//! `analysis.toml` — the suppression file at the workspace root.
//!
//! Format (a deliberately tiny TOML subset — `[[allow]]` tables of string
//! keys, comments with `#`):
//!
//! ```toml
//! [[allow]]
//! rule = "seed-hygiene"
//! path = "crates/sim/src/system.rs"
//! pattern = "SplitMix64::new(0xC0FF_EE00_D15E_A5E5)"  # optional narrowing
//! justification = "process-constant default noise seed; every harness overrides it"
//! ```
//!
//! `rule`, `path`, and a **non-trivial** `justification` (≥ 15 characters;
//! suppressions must say *why*) are mandatory. `pattern`, when present,
//! narrows the entry to findings whose source line contains it verbatim.
//! Entries that suppress nothing are themselves reported as
//! [`RuleId::StaleAllow`] findings, so the file can only shrink as the
//! tree gets cleaner.

use crate::rules::{Finding, RuleId};
use std::collections::BTreeSet;

/// Minimum length of a `justification` string. Short enough not to force
/// padding, long enough that "ok" or "TODO" cannot pass review.
pub const MIN_JUSTIFICATION: usize = 15;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// The rule being suppressed.
    pub rule: RuleId,
    /// Workspace-relative path the suppression applies to.
    pub path: String,
    /// Optional substring the offending source line must contain.
    pub pattern: Option<String>,
    /// Why this suppression is sound.
    pub justification: String,
    /// 1-based line in `analysis.toml` where the entry starts.
    pub defined_at: usize,
}

impl AllowEntry {
    /// Does this entry suppress `finding`?
    pub fn matches(&self, finding: &Finding) -> bool {
        self.rule == finding.rule
            && self.path == finding.path
            && self
                .pattern
                .as_ref()
                .is_none_or(|p| finding.excerpt.contains(p.as_str()))
    }
}

/// An `[[allow]]` entry whose `rule` names no rule in the current rule
/// set. Rules get renamed or retired across engine versions; the entry is
/// not a parse error (that would brick the whole scan over dead config)
/// but it can never suppress anything again, so [`Allowlist::apply`]
/// reports it as a [`RuleId::StaleAllow`] finding — the same treatment a
/// renamed *file* gets.
#[derive(Debug, Clone)]
pub struct RetiredEntry {
    /// The unrecognized rule name, verbatim.
    pub rule_name: String,
    /// Workspace-relative path the entry pointed at.
    pub path: String,
    /// 1-based line in `analysis.toml` where the entry starts.
    pub defined_at: usize,
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
    /// Entries naming rules that no longer exist, in file order.
    pub retired: Vec<RetiredEntry>,
}

impl Allowlist {
    /// Parse `analysis.toml` contents. Returns a human-readable error for
    /// malformed or unjustified entries.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut list = Self::default();
        let mut current: Option<RawEntry> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(raw) = current.take() {
                    list.push(raw.finish()?);
                }
                current = Some(RawEntry::new(line_no));
                continue;
            }
            let Some(raw) = current.as_mut() else {
                return Err(format!(
                    "analysis.toml:{line_no}: expected [[allow]] before '{line}'"
                ));
            };
            let (key, value) = parse_key_value(line)
                .ok_or_else(|| format!("analysis.toml:{line_no}: cannot parse '{line}' (expected key = \"value\")"))?;
            raw.set(key, value, line_no)?;
        }
        if let Some(raw) = current.take() {
            list.push(raw.finish()?);
        }
        Ok(list)
    }

    fn push(&mut self, entry: ParsedEntry) {
        match entry {
            ParsedEntry::Active(e) => self.entries.push(e),
            ParsedEntry::Retired(e) => self.retired.push(e),
        }
    }

    /// Split `findings` into (kept, suppressed_count) and append a
    /// [`RuleId::StaleAllow`] finding for every entry that matched nothing.
    ///
    /// `known_paths` is the set of workspace-relative paths that exist in
    /// the scanned tree (rule-scanned sources plus the tests corpus). An
    /// entry whose `path` is absent from it points at a renamed or deleted
    /// file: such an entry can never suppress anything again, and it is
    /// reported with a dedicated message — **regardless** of whether the
    /// matching loop marked it used — so a rename can never leave a
    /// suppression silently satisfied. Pass an empty set to skip the
    /// existence check (unit tests exercising pure match logic).
    pub fn apply(
        &self,
        findings: Vec<Finding>,
        known_paths: &BTreeSet<String>,
    ) -> (Vec<Finding>, usize) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0;
        for finding in findings {
            let mut hit = false;
            for (i, entry) in self.entries.iter().enumerate() {
                if entry.matches(&finding) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                suppressed += 1;
            } else {
                kept.push(finding);
            }
        }
        for (entry, used) in self.entries.iter().zip(used) {
            let missing = !known_paths.is_empty() && !known_paths.contains(&entry.path);
            let message = if missing {
                format!(
                    "allow entry for [{}] names '{}', which is not in the scanned \
                     workspace — the file was renamed or deleted; delete the entry \
                     or re-point it",
                    entry.rule, entry.path
                )
            } else if !used {
                format!(
                    "allow entry for [{}] {} suppresses nothing; delete it",
                    entry.rule, entry.path
                )
            } else {
                continue;
            };
            kept.push(Finding {
                rule: RuleId::StaleAllow,
                path: "analysis.toml".to_string(),
                line: entry.defined_at,
                message,
                excerpt: entry
                    .pattern
                    .clone()
                    .unwrap_or_else(|| entry.path.clone()),
            });
        }
        for entry in &self.retired {
            kept.push(Finding {
                rule: RuleId::StaleAllow,
                path: "analysis.toml".to_string(),
                line: entry.defined_at,
                message: format!(
                    "allow entry for '{}' names rule '{}', which is not in the \
                     current rule set — the rule was renamed, retired, or is not \
                     suppressible; delete the entry or re-point it (see --list-rules)",
                    entry.path, entry.rule_name
                ),
                excerpt: entry.rule_name.clone(),
            });
        }
        (kept, suppressed)
    }
}

/// The outcome of parsing one `[[allow]]` table.
enum ParsedEntry {
    Active(AllowEntry),
    Retired(RetiredEntry),
}

/// An entry under construction during parsing.
struct RawEntry {
    defined_at: usize,
    rule: Option<String>,
    path: Option<String>,
    pattern: Option<String>,
    justification: Option<String>,
}

impl RawEntry {
    fn new(defined_at: usize) -> Self {
        Self {
            defined_at,
            rule: None,
            path: None,
            pattern: None,
            justification: None,
        }
    }

    fn set(&mut self, key: &str, value: String, line_no: usize) -> Result<(), String> {
        match key {
            "rule" => self.rule = Some(value),
            "path" => self.path = Some(value),
            "pattern" => self.pattern = Some(value),
            "justification" => self.justification = Some(value),
            other => {
                return Err(format!("analysis.toml:{line_no}: unknown key '{other}'"))
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<ParsedEntry, String> {
        let at = self.defined_at;
        let rule_name = self
            .rule
            .ok_or_else(|| format!("analysis.toml:{at}: entry is missing 'rule'"))?;
        let path = self
            .path
            .ok_or_else(|| format!("analysis.toml:{at}: entry is missing 'path'"))?;
        let justification = self
            .justification
            .ok_or_else(|| format!("analysis.toml:{at}: entry is missing 'justification'"))?;
        if justification.trim().len() < MIN_JUSTIFICATION {
            return Err(format!(
                "analysis.toml:{at}: justification too short (need ≥ {MIN_JUSTIFICATION} characters explaining why the suppression is sound)"
            ));
        }
        // An unrecognized rule name is *not* a parse error: rules get
        // renamed and retired across engine versions, and a hard error
        // here would brick every scan over dead config. The entry is kept
        // aside and reported as stale-allow by `apply` instead.
        match RuleId::from_name(&rule_name) {
            Some(rule) => Ok(ParsedEntry::Active(AllowEntry {
                rule,
                path,
                pattern: self.pattern,
                justification,
                defined_at: at,
            })),
            None => Ok(ParsedEntry::Retired(RetiredEntry {
                rule_name,
                path,
                defined_at: at,
            })),
        }
    }
}

/// Drop a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `key = "value"`.
fn parse_key_value(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some((key.trim(), inner.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: RuleId, path: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            excerpt: excerpt.to_string(),
        }
    }

    const GOOD: &str = r#"
# workspace suppressions
[[allow]]
rule = "seed-hygiene"
path = "crates/sim/src/system.rs"
pattern = "SplitMix64::new(0xC0FF)"
justification = "default noise seed, overridden by every harness"
"#;

    #[test]
    fn parses_a_valid_entry() {
        let list = Allowlist::parse(GOOD).expect("valid");
        assert_eq!(list.entries.len(), 1);
        assert_eq!(list.entries[0].rule, RuleId::SeedHygiene);
        assert_eq!(list.entries[0].pattern.as_deref(), Some("SplitMix64::new(0xC0FF)"));
    }

    #[test]
    fn suppresses_matching_findings_only() {
        let list = Allowlist::parse(GOOD).expect("valid");
        let hit = finding(RuleId::SeedHygiene, "crates/sim/src/system.rs", "SplitMix64::new(0xC0FF)");
        let wrong_path = finding(RuleId::SeedHygiene, "crates/sim/src/frame.rs", "SplitMix64::new(0xC0FF)");
        let wrong_rule = finding(RuleId::Unwrap, "crates/sim/src/system.rs", "SplitMix64::new(0xC0FF)");
        let (kept, suppressed) = list.apply(vec![hit, wrong_path, wrong_rule], &BTreeSet::new());
        assert_eq!(suppressed, 1);
        // wrong_path + wrong_rule kept; entry used, so no stale finding.
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|f| f.rule != RuleId::StaleAllow));
    }

    #[test]
    fn unused_entries_become_stale_findings() {
        let list = Allowlist::parse(GOOD).expect("valid");
        let (kept, suppressed) = list.apply(Vec::new(), &BTreeSet::new());
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RuleId::StaleAllow);
        assert_eq!(kept[0].path, "analysis.toml");
    }

    fn paths(ps: &[&str]) -> BTreeSet<String> {
        ps.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn entry_for_a_deleted_file_reports_renamed_or_deleted() {
        // Regression: the entry's file is gone from the scanned tree. The
        // generic "suppresses nothing" message hid the root cause; the
        // entry must name the rename/delete explicitly.
        let list = Allowlist::parse(GOOD).expect("valid");
        let known = paths(&["crates/sim/src/frame.rs"]); // system.rs renamed away
        let (kept, suppressed) = list.apply(Vec::new(), &known);
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RuleId::StaleAllow);
        assert!(
            kept[0].message.contains("renamed or deleted"),
            "{}",
            kept[0].message
        );
        assert!(
            kept[0].message.contains("crates/sim/src/system.rs"),
            "{}",
            kept[0].message
        );
    }

    #[test]
    fn entry_for_an_existing_file_keeps_the_generic_stale_message() {
        let list = Allowlist::parse(GOOD).expect("valid");
        let known = paths(&["crates/sim/src/system.rs"]);
        let (kept, _) = list.apply(Vec::new(), &known);
        assert_eq!(kept.len(), 1);
        assert!(
            kept[0].message.contains("suppresses nothing"),
            "{}",
            kept[0].message
        );
    }

    #[test]
    fn missing_file_is_flagged_even_when_the_entry_somehow_matched() {
        // Defence in depth: should future matching ever get looser (e.g. a
        // pattern-only fallback), an entry pointing at a non-existent file
        // must still surface — a rename can never silently satisfy it.
        let list = Allowlist::parse(GOOD).expect("valid");
        let hit = finding(
            RuleId::SeedHygiene,
            "crates/sim/src/system.rs",
            "SplitMix64::new(0xC0FF)",
        );
        let known = paths(&["crates/sim/src/frame.rs"]);
        let (kept, suppressed) = list.apply(vec![hit], &known);
        assert_eq!(suppressed, 1, "the match itself still counts");
        assert_eq!(kept.len(), 1, "{kept:?}");
        assert!(kept[0].message.contains("renamed or deleted"), "{}", kept[0].message);
    }

    #[test]
    fn short_justifications_are_rejected() {
        let bad = "[[allow]]\nrule = \"unwrap\"\npath = \"x.rs\"\njustification = \"ok\"\n";
        let err = Allowlist::parse(bad).expect_err("too short");
        assert!(err.contains("justification too short"), "{err}");
    }

    #[test]
    fn missing_fields_are_rejected() {
        let bad = "[[allow]]\nrule = \"unwrap\"\njustification = \"long enough to pass the bar\"\n";
        assert!(Allowlist::parse(bad).expect_err("no path").contains("missing 'path'"));
        let bad2 = "[[allow]]\npath = \"x.rs\"\njustification = \"long enough to pass the bar\"\n";
        assert!(Allowlist::parse(bad2).expect_err("no rule").contains("missing 'rule'"));
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let bad = "[[allow]]\nrule = \"unwrap\"\nseverity = \"low\"\npath = \"x.rs\"\njustification = \"long enough to pass the bar\"\n";
        assert!(Allowlist::parse(bad).expect_err("bad key").contains("unknown key"));
    }

    #[test]
    fn an_entry_naming_a_retired_rule_parses_and_reports_stale() {
        // The rule was renamed or retired in a later engine version; the
        // entry must not brick the scan (mirroring the renamed-file
        // treatment), but it must surface loudly.
        let text = "[[allow]]\nrule = \"determinism-v1\"\npath = \"crates/sim/src/system.rs\"\njustification = \"long enough to pass the bar\"\n";
        let list = Allowlist::parse(text).expect("parses despite the dead rule");
        assert!(list.entries.is_empty());
        assert_eq!(list.retired.len(), 1);
        assert_eq!(list.retired[0].rule_name, "determinism-v1");

        let (kept, suppressed) = list.apply(Vec::new(), &BTreeSet::new());
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RuleId::StaleAllow);
        assert_eq!(kept[0].path, "analysis.toml");
        assert_eq!(kept[0].line, 1, "points at the [[allow]] header");
        assert!(kept[0].message.contains("renamed, retired"), "{}", kept[0].message);
        assert!(kept[0].message.contains("determinism-v1"), "{}", kept[0].message);
        assert!(
            kept[0].message.contains("crates/sim/src/system.rs"),
            "{}",
            kept[0].message
        );
    }

    #[test]
    fn a_retired_rule_entry_never_suppresses_anything() {
        let text = "[[allow]]\nrule = \"determinism-v1\"\npath = \"crates/sim/src/system.rs\"\njustification = \"long enough to pass the bar\"\n";
        let list = Allowlist::parse(text).expect("parses");
        let hit = finding(RuleId::Nondeterminism, "crates/sim/src/system.rs", "Instant::now()");
        let (kept, suppressed) = list.apply(vec![hit], &BTreeSet::new());
        assert_eq!(suppressed, 0, "dead entries must not swallow live findings");
        assert_eq!(kept.len(), 2, "the finding plus the stale-allow report: {kept:?}");
    }

    #[test]
    fn retired_entries_still_need_path_and_justification() {
        let bad = "[[allow]]\nrule = \"determinism-v1\"\njustification = \"long enough to pass the bar\"\n";
        assert!(Allowlist::parse(bad).expect_err("no path").contains("missing 'path'"));
        let bad2 = "[[allow]]\nrule = \"determinism-v1\"\npath = \"x.rs\"\njustification = \"ok\"\n";
        assert!(Allowlist::parse(bad2).expect_err("short").contains("justification too short"));
    }

    #[test]
    fn stale_allow_is_not_suppressible() {
        assert!(RuleId::from_name("stale-allow").is_none());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# header\n\n{GOOD}\n# trailer\n");
        assert_eq!(Allowlist::parse(&text).expect("valid").entries.len(), 1);
    }
}
