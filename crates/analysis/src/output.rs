//! Report rendering: `text` (human terminals), `json` (scripting), and
//! `sarif` (SARIF 2.1.0, consumed by GitHub code scanning to annotate PR
//! diffs with the findings).
//!
//! All three are pure functions of a [`Report`], so the CLI can print one
//! to stdout while CI archives another from the same scan.

use crate::json::Value;
use crate::rules::ALL_RULES;
use crate::Report;

/// The SARIF spec version emitted by [`render_sarif`].
pub const SARIF_VERSION: &str = "2.1.0";

/// The `$schema` URI stamped into SARIF output.
pub const SARIF_SCHEMA: &str =
    "https://json.schemastore.org/sarif-2.1.0.json";

/// Render the human-readable report: one block per finding plus the
/// summary line the CI log greps for.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for finding in &report.findings {
        out.push_str(&finding.to_string());
        out.push('\n');
    }
    let noun = if report.findings.len() == 1 {
        "finding"
    } else {
        "findings"
    };
    out.push_str(&format!(
        "rfid-analysis: {} {noun}, {} suppressed ({} inline), {} files scanned\n",
        report.findings.len(),
        report.suppressed + report.suppressed_inline,
        report.suppressed_inline,
        report.files_scanned
    ));
    out
}

/// Render the report as a single JSON document.
pub fn render_json(report: &Report) -> String {
    let findings = report
        .findings
        .iter()
        .map(|f| {
            Value::Obj(vec![
                ("rule".into(), Value::str(f.rule.name())),
                ("path".into(), Value::str(&f.path)),
                ("line".into(), Value::int(f.line)),
                ("message".into(), Value::str(&f.message)),
                ("excerpt".into(), Value::str(&f.excerpt)),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("tool".into(), Value::str("rfid-analysis")),
        ("clean".into(), Value::Bool(report.is_clean())),
        ("files_scanned".into(), Value::int(report.files_scanned)),
        ("suppressed".into(), Value::int(report.suppressed)),
        ("suppressed_inline".into(), Value::int(report.suppressed_inline)),
        ("findings".into(), Value::Arr(findings)),
        ("callgraph".into(), report.callgraph.to_json()),
        ("effects".into(), report.effects.to_json(&report.callgraph)),
    ])
    .write()
}

/// Render the report as a SARIF 2.1.0 log with one run. Every rule is
/// declared in the tool descriptor (so code scanning can show rule help)
/// and every finding becomes a `level: error` result with one physical
/// location.
pub fn render_sarif(report: &Report) -> String {
    let rules = ALL_RULES
        .iter()
        .map(|r| {
            Value::Obj(vec![
                ("id".into(), Value::str(r.name())),
                (
                    "shortDescription".into(),
                    Value::Obj(vec![("text".into(), Value::str(r.summary()))]),
                ),
                (
                    "fullDescription".into(),
                    Value::Obj(vec![("text".into(), Value::str(r.explanation()))]),
                ),
            ])
        })
        .collect();
    let results = report
        .findings
        .iter()
        .map(|f| {
            Value::Obj(vec![
                ("ruleId".into(), Value::str(f.rule.name())),
                ("level".into(), Value::str("error")),
                (
                    "message".into(),
                    Value::Obj(vec![(
                        "text".into(),
                        Value::str(format!("{} — {}", f.message, f.excerpt)),
                    )]),
                ),
                (
                    "locations".into(),
                    Value::Arr(vec![Value::Obj(vec![(
                        "physicalLocation".into(),
                        Value::Obj(vec![
                            (
                                "artifactLocation".into(),
                                Value::Obj(vec![
                                    ("uri".into(), Value::str(&f.path)),
                                    ("uriBaseId".into(), Value::str("SRCROOT")),
                                ]),
                            ),
                            (
                                "region".into(),
                                Value::Obj(vec![(
                                    "startLine".into(),
                                    Value::int(f.line.max(1)),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    let run = Value::Obj(vec![
        (
            "tool".into(),
            Value::Obj(vec![(
                "driver".into(),
                Value::Obj(vec![
                    ("name".into(), Value::str("rfid-analysis")),
                    ("rules".into(), Value::Arr(rules)),
                ]),
            )]),
        ),
        (
            "originalUriBaseIds".into(),
            Value::Obj(vec![(
                "SRCROOT".into(),
                Value::Obj(vec![("uri".into(), Value::str("file:///"))]),
            )]),
        ),
        ("results".into(), Value::Arr(results)),
    ]);
    Value::Obj(vec![
        ("$schema".into(), Value::str(SARIF_SCHEMA)),
        ("version".into(), Value::str(SARIF_VERSION)),
        ("runs".into(), Value::Arr(vec![run])),
    ])
    .write()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Finding, RuleId};

    fn report() -> Report {
        Report {
            findings: vec![Finding {
                rule: RuleId::Unwrap,
                path: "crates/sim/src/lib.rs".into(),
                line: 7,
                message: ".unwrap() in library code".into(),
                excerpt: "x.unwrap()".into(),
            }],
            files_scanned: 3,
            suppressed: 2,
            suppressed_inline: 1,
            callgraph: crate::callgraph::CallGraph::default(),
            effects: crate::effects::Effects::default(),
        }
    }

    #[test]
    fn text_report_carries_findings_and_summary() {
        let text = render_text(&report());
        assert!(text.contains("crates/sim/src/lib.rs:7: [unwrap]"), "{text}");
        assert!(text.contains("1 finding, 3 suppressed (1 inline), 3 files scanned"), "{text}");
    }

    #[test]
    fn json_report_parses_back_and_carries_the_finding() {
        let doc = Value::parse(&render_json(&report())).expect("valid JSON");
        assert_eq!(doc.get("clean"), Some(&Value::Bool(false)));
        let findings = doc.get("findings").and_then(Value::as_arr).expect("array");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("rule").and_then(Value::as_str), Some("unwrap"));
        assert_eq!(findings[0].get("line").and_then(Value::as_num), Some(7.0));
        assert_eq!(
            doc.get("effects").and_then(|e| e.get("schema")).and_then(Value::as_str),
            Some("rfid-effects/v1"),
            "effect summaries ride along in the JSON report"
        );
    }

    #[test]
    fn sarif_report_has_the_2_1_0_skeleton() {
        let doc = Value::parse(&render_sarif(&report())).expect("valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some(SARIF_VERSION));
        let runs = doc.get("runs").and_then(Value::as_arr).expect("runs");
        assert_eq!(runs.len(), 1);
        let driver = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("driver");
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("rfid-analysis"));
        let rules = driver.get("rules").and_then(Value::as_arr).expect("rules");
        assert_eq!(rules.len(), ALL_RULES.len(), "every rule is declared");
        let results = runs[0].get("results").and_then(Value::as_arr).expect("results");
        let loc = results[0].get("locations").and_then(Value::as_arr).expect("locations")[0]
            .get("physicalLocation")
            .expect("physicalLocation");
        assert_eq!(
            loc.get("artifactLocation").and_then(|a| a.get("uri")).and_then(Value::as_str),
            Some("crates/sim/src/lib.rs")
        );
        assert_eq!(
            loc.get("region").and_then(|r| r.get("startLine")).and_then(Value::as_num),
            Some(7.0)
        );
    }
}
