//! Interprocedural effect inference: per-fn summaries over a powerset
//! lattice, computed to fixpoint over the workspace call graph.
//!
//! Engine v3 ([`dataflow`](crate::dataflow)) answers "where did this seed
//! *value* come from"; v4 asks the dual question — "what does calling this
//! fn *do*". Each fn gets a summary drawn from five effects:
//!
//! | Effect | Seeded by |
//! |--------|-----------|
//! | `panics` | `.unwrap()`/`.expect(`, `panic!`-family macros, nested `assert!`/slice indexing, `unchecked_*` |
//! | `allocates` | `Vec::`/`Box::`/`String::` constructors, `vec!`/`format!`, `.collect(`/`.to_vec(`/`.to_owned(`/`.to_string(` |
//! | `charges-air-time` | `*_BITS` air-time constants, `AirTimeLedger` methods |
//! | `draws-randomness` | `SplitMix64`/`XorShift32` mentions and their impl methods |
//! | `float-accumulates` | `+=`/`.sum()`/`.product()` in fns that touch `f32`/`f64` |
//!
//! Seeds are harvested syntactically from each fn's masked body tokens;
//! the fixpoint then unions every resolved callee's summary into its
//! caller (`.method(` over-approximation included, exactly as in v3, so
//! trait-dispatch edges propagate effects too). `#[cfg(test)]` callees do
//! not propagate — tests unwrap and allocate freely by contract.
//!
//! The lattice is the powerset of the five effects ordered by inclusion;
//! joins are unions, so summaries only grow and the fixpoint terminates.
//! Seed sites carry a `guard` flag: an `assert!`, slice index, or
//! allocation at block depth 0 of its fn body is a *top-level
//! precondition guard / pre-loop setup* — it still contributes to the
//! dumped summary, but the hot-path rules exempt it (failing fast at the
//! call boundary and allocating an output buffer before the loop are both
//! sanctioned patterns). `debug_assert!` never seeds anything: it is
//! compiled out of release binaries.
//!
//! Summaries are dumped as `rfid-effects/v1` JSON behind `--dump-effects`
//! and embedded in `--format json`; the CI `analysis` job gates on every
//! workspace crate having at least one fn with a non-empty summary.

use crate::callgraph::{CallGraph, FnDef, Resolution};
use crate::json::Value;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeMap;

/// One effect in the summary lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// May abort the process: unwrap/expect, panic-family macros, nested
    /// asserts or slice indexing, unchecked arithmetic.
    Panics,
    /// May allocate on the heap: container constructors, `vec!`/`format!`,
    /// collecting/cloning adapters.
    Allocates,
    /// Touches the air-time accounting surface: `*_BITS` constants or an
    /// `AirTimeLedger` charging primitive.
    ChargesAirTime,
    /// Draws from a deterministic PRNG stream.
    DrawsRandomness,
    /// Performs order-sensitive float accumulation.
    FloatAccumulates,
}

/// Every effect, in canonical (bit) order.
pub const ALL_EFFECTS: &[Effect] = &[
    Effect::Panics,
    Effect::Allocates,
    Effect::ChargesAirTime,
    Effect::DrawsRandomness,
    Effect::FloatAccumulates,
];

impl Effect {
    /// Stable name used in the JSON dump and rule messages.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Panics => "panics",
            Effect::Allocates => "allocates",
            Effect::ChargesAirTime => "charges-air-time",
            Effect::DrawsRandomness => "draws-randomness",
            Effect::FloatAccumulates => "float-accumulates",
        }
    }

    fn bit(self) -> u8 {
        match self {
            Effect::Panics => 1,
            Effect::Allocates => 1 << 1,
            Effect::ChargesAirTime => 1 << 2,
            Effect::DrawsRandomness => 1 << 3,
            Effect::FloatAccumulates => 1 << 4,
        }
    }
}

/// A set of effects — one element of the powerset lattice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The bottom element (no effects).
    pub const EMPTY: EffectSet = EffectSet(0);

    /// Add one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// Is `e` in the set?
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// Lattice join.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Is this the bottom element?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Does this set contain every effect of `other`? (Lattice ≥.)
    pub fn is_superset(self, other: EffectSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// The member effects, in canonical order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        ALL_EFFECTS.iter().copied().filter(move |e| self.contains(*e))
    }

    /// Member names, for messages and JSON.
    pub fn names(self) -> Vec<&'static str> {
        self.iter().map(Effect::name).collect()
    }
}

/// One syntactic seed site inside a fn body.
#[derive(Debug, Clone)]
pub struct SeedSite {
    /// The effect this site contributes.
    pub effect: Effect,
    /// 1-based line of the site.
    pub line: usize,
    /// Is this a sanctioned top-level precondition guard / pre-loop setup
    /// (block depth 0 of the fn body)? The hot-path rules exempt these.
    pub guard: bool,
    /// What the harvester saw (for rule messages: `".unwrap()"`,
    /// `"assert!"`, `"`RETRY_QUERY_BITS` air-time constant"`, …).
    pub what: String,
}

/// The computed effect summaries for a whole workspace. All three vectors
/// are parallel to `CallGraph::fns`.
#[derive(Debug, Default)]
pub struct Effects {
    /// Per fn: effects seeded directly in its own body.
    pub direct: Vec<EffectSet>,
    /// Per fn: the fixpoint summary (direct ∪ every resolved non-test
    /// callee's summary, transitively).
    pub summary: Vec<EffectSet>,
    /// Per fn: the seed sites behind `direct`, for rule diagnostics.
    pub seeds: Vec<Vec<SeedSite>>,
}

/// Macros that abort unconditionally when reached.
const HARD_PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Macros that abort when their condition fails — guards at depth 0.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

/// Allocating macro invocations.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Types whose `::` constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "BTreeSet"];

/// Allocating `.method(` adapters.
const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string"];

/// Method receivers that consume unwrappable options/results and panic.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// The workspace PRNG types; constructing or stepping one draws
/// randomness.
const PRNG_TYPES: &[&str] = &["SplitMix64", "XorShift32"];

/// The air-time accounting type; every method on it is a charging
/// primitive.
const LEDGER_TYPE: &str = "AirTimeLedger";

impl Effects {
    /// Harvest seeds and run the summary fixpoint over `files`/`graph`.
    pub fn compute(files: &[SourceFile], graph: &CallGraph) -> Self {
        let seeds: Vec<Vec<SeedSite>> = graph
            .fns
            .iter()
            .map(|def| harvest(&files[def.file], def))
            .collect();
        let direct: Vec<EffectSet> = seeds
            .iter()
            .map(|sites| {
                let mut set = EffectSet::EMPTY;
                for s in sites {
                    set.insert(s.effect);
                }
                set
            })
            .collect();
        let mut summary = direct.clone();
        // Each productive round sets at least one new bit out of at most
        // 5·n total, so 5·n + 1 rounds always reach the fixpoint; in
        // practice convergence takes a handful of rounds.
        let cap = 5 * graph.fns.len() + 1;
        for _ in 0..cap {
            let mut changed = false;
            for (id, _) in graph.fns.iter().enumerate() {
                let mut joined = summary[id];
                for call in graph.calls_from(id) {
                    if let Resolution::Resolved(targets) = &call.resolution {
                        for &t in targets {
                            // Test-only callees do not propagate: tests
                            // unwrap and allocate freely by contract.
                            if !graph.fns[t].cfg_test {
                                joined = joined.union(summary[t]);
                            }
                        }
                    }
                }
                if joined != summary[id] {
                    summary[id] = joined;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Effects {
            direct,
            summary,
            seeds,
        }
    }

    /// The summary as `rfid-effects/v1` JSON. Shape:
    ///
    /// ```text
    /// { "schema": "rfid-effects/v1",
    ///   "effects": ["panics", …],
    ///   "fns": [ { "crate", "file", "line", "name",
    ///              "direct": […], "summary": […] }, … ],
    ///   "crates": { "<crate>": <fns with non-empty summary> } }
    /// ```
    ///
    /// Only fns with a non-empty summary are listed; `fns` is ordered by
    /// `(file, byte offset)` (the call graph's canonical order), so the
    /// dump is deterministic regardless of file-load order.
    pub fn to_json(&self, graph: &CallGraph) -> Value {
        let mut fns = Vec::new();
        let mut crates: BTreeMap<String, usize> = BTreeMap::new();
        for (id, def) in graph.fns.iter().enumerate() {
            let count = crates.entry(def.crate_name.clone()).or_insert(0);
            let set = self.summary[id];
            if set.is_empty() {
                continue;
            }
            *count += 1;
            let names = |s: EffectSet| {
                Value::Arr(s.names().into_iter().map(Value::str).collect())
            };
            fns.push(Value::Obj(vec![
                ("crate".to_string(), Value::str(def.crate_name.clone())),
                ("file".to_string(), Value::str(def.rel_path.clone())),
                ("line".to_string(), Value::int(def.line)),
                ("name".to_string(), Value::str(def.qualified_name())),
                ("direct".to_string(), names(self.direct[id])),
                ("summary".to_string(), names(set)),
            ]));
        }
        Value::Obj(vec![
            ("schema".to_string(), Value::str("rfid-effects/v1")),
            (
                "effects".to_string(),
                Value::Arr(ALL_EFFECTS.iter().map(|e| Value::str(e.name())).collect()),
            ),
            ("fns".to_string(), Value::Arr(fns)),
            (
                "crates".to_string(),
                Value::Obj(
                    crates
                        .into_iter()
                        .map(|(k, v)| (k, Value::int(v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Harvest every seed site in one fn body.
fn harvest(file: &SourceFile, def: &FnDef) -> Vec<SeedSite> {
    let mut sites: Vec<SeedSite> = Vec::new();
    // One site per (effect, line), so `xs[i] + ys[i]` seeds once.
    let mut seen: Vec<(Effect, usize)> = Vec::new();
    let mut push = |sites: &mut Vec<SeedSite>,
                    effect: Effect,
                    line: usize,
                    guard: bool,
                    what: String| {
        if !seen.contains(&(effect, line)) {
            seen.push((effect, line));
            sites.push(SeedSite {
                effect,
                line,
                guard,
                what,
            });
        }
    };

    // Type-level seeds: methods *on* the ledger or a PRNG are the
    // primitives themselves, whatever their bodies look like.
    match def.self_type.as_deref() {
        Some(LEDGER_TYPE) => push(
            &mut sites,
            Effect::ChargesAirTime,
            def.line,
            false,
            format!("`{LEDGER_TYPE}` charging primitive"),
        ),
        Some(t) if PRNG_TYPES.contains(&t) => push(
            &mut sites,
            Effect::DrawsRandomness,
            def.line,
            false,
            format!("`{t}` PRNG impl method"),
        ),
        _ => {}
    }

    let tokens = file.tokens();
    let floaty = touches_floats(file, def);
    for i in def.body_tokens.clone() {
        let tok = &tokens[i];
        let text = file.token_text(i);
        let line = tok.line;
        let blocks = file
            .scopes()
            .enclosing_fn(tok.start)
            .map_or(0, |(_, blocks)| blocks);
        let next = |k: usize| {
            tokens
                .get(i + k)
                .map_or("", |_| file.token_text(i + k))
        };
        let prev = if i > 0 { file.token_text(i - 1) } else { "" };
        match tok.kind {
            TokenKind::Ident if next(1) == "!" => {
                if HARD_PANIC_MACROS.contains(&text) {
                    push(&mut sites, Effect::Panics, line, false, format!("{text}!"));
                } else if ASSERT_MACROS.contains(&text) {
                    // debug_assert* is a different token and never lands
                    // here — it is compiled out of release binaries.
                    push(
                        &mut sites,
                        Effect::Panics,
                        line,
                        blocks == 0,
                        format!("{text}!"),
                    );
                } else if ALLOC_MACROS.contains(&text) {
                    push(
                        &mut sites,
                        Effect::Allocates,
                        line,
                        blocks == 0,
                        format!("{text}!"),
                    );
                }
            }
            TokenKind::Ident
                if text.starts_with("unchecked_") || text.starts_with("get_unchecked") =>
            {
                push(&mut sites, Effect::Panics, line, false, text.to_string());
            }
            TokenKind::Ident if text.ends_with("_BITS") && text.len() > "_BITS".len() => {
                push(
                    &mut sites,
                    Effect::ChargesAirTime,
                    line,
                    false,
                    format!("`{text}` air-time constant"),
                );
            }
            TokenKind::Ident if PRNG_TYPES.contains(&text) => {
                push(
                    &mut sites,
                    Effect::DrawsRandomness,
                    line,
                    false,
                    format!("`{text}`"),
                );
            }
            TokenKind::Ident if prev == "." && next(1) == "(" => {
                if PANIC_METHODS.contains(&text) {
                    push(
                        &mut sites,
                        Effect::Panics,
                        line,
                        false,
                        format!(".{text}()"),
                    );
                } else if ALLOC_METHODS.contains(&text) {
                    push(
                        &mut sites,
                        Effect::Allocates,
                        line,
                        blocks == 0,
                        format!(".{text}()"),
                    );
                } else if floaty && (text == "sum" || text == "product") {
                    push(
                        &mut sites,
                        Effect::FloatAccumulates,
                        line,
                        false,
                        format!(".{text}()"),
                    );
                }
            }
            TokenKind::Ident if ALLOC_TYPES.contains(&text) && next(1) == "::" => {
                push(
                    &mut sites,
                    Effect::Allocates,
                    line,
                    blocks == 0,
                    format!("{text}::{}", next(2)),
                );
            }
            TokenKind::Punct if text == "+=" && floaty => {
                push(
                    &mut sites,
                    Effect::FloatAccumulates,
                    line,
                    false,
                    "`+=` accumulation".to_string(),
                );
            }
            TokenKind::Punct if text == "[" => {
                // Indexing only when `[` follows an expression tail — the
                // same classifier the panic-path rule uses (skips `vec![`,
                // attributes, array types and literals).
                let is_index = i > 0 && {
                    let p = &tokens[i - 1];
                    (matches!(p.kind, TokenKind::Ident | TokenKind::Int) && prev != "as")
                        || (p.kind == TokenKind::Punct && (prev == ")" || prev == "]"))
                };
                if is_index {
                    push(
                        &mut sites,
                        Effect::Panics,
                        line,
                        blocks == 0,
                        "slice indexing".to_string(),
                    );
                }
            }
            _ => {}
        }
    }
    sites
}

/// Does the fn touch floats at all (header or body)? Used to scope the
/// `float-accumulates` seeds: `+=` over integers is not an ordering
/// hazard.
fn touches_floats(file: &SourceFile, def: &FnDef) -> bool {
    let tokens = file.tokens();
    def.header_tokens
        .clone()
        .chain(def.body_tokens.clone())
        .any(|i| {
            tokens[i].kind == TokenKind::Float || {
                let t = file.token_text(i);
                t == "f64" || t == "f32"
            }
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TargetKind;

    fn workspace(files: &[(&str, &str, &str)]) -> (Vec<SourceFile>, CallGraph, Effects) {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, krate, text)| SourceFile::new(path, krate, TargetKind::Lib, text))
            .collect();
        let graph = CallGraph::build(&sources);
        let effects = Effects::compute(&sources, &graph);
        (sources, graph, effects)
    }

    fn summary_of(graph: &CallGraph, e: &Effects, name: &str) -> EffectSet {
        let ids = graph
            .fns
            .iter()
            .enumerate()
            .filter(|(_, d)| d.name == name)
            .map(|(i, _)| i)
            .collect::<Vec<_>>();
        assert_eq!(ids.len(), 1, "fixture defines `{name}` once");
        e.summary[ids[0]]
    }

    #[test]
    fn direct_seeds_cover_the_five_effects() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn p(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn a() -> Vec<u8> { Vec::new() }\n\
             pub const RETRY_QUERY_BITS: u64 = 32;\n\
             pub fn c(n: u64) -> u64 { n * RETRY_QUERY_BITS }\n\
             pub fn r(seed: u64) { let _ = SplitMix64::new(seed); }\n\
             pub fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for x in xs { s += x; } s }\n",
        )]);
        assert!(summary_of(&g, &e, "p").contains(Effect::Panics));
        assert!(summary_of(&g, &e, "a").contains(Effect::Allocates));
        assert!(summary_of(&g, &e, "c").contains(Effect::ChargesAirTime));
        assert!(summary_of(&g, &e, "r").contains(Effect::DrawsRandomness));
        assert!(summary_of(&g, &e, "f").contains(Effect::FloatAccumulates));
    }

    #[test]
    fn effects_propagate_up_call_chains_to_fixpoint() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn top() { mid(); }\n\
             pub fn mid() { bottom(); }\n\
             pub fn bottom(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        assert!(summary_of(&g, &e, "bottom").contains(Effect::Panics));
        assert!(summary_of(&g, &e, "mid").contains(Effect::Panics));
        assert!(summary_of(&g, &e, "top").contains(Effect::Panics));
    }

    #[test]
    fn method_calls_propagate_through_the_overapproximation() {
        let (_, g, e) = workspace(&[
            (
                "crates/core/src/lib.rs",
                "core",
                "pub struct Sink;\nimpl Sink { pub fn record(&mut self, s: usize) -> Vec<u8> { Vec::new() } }\n",
            ),
            (
                "crates/sim/src/lib.rs",
                "sim",
                "pub fn drive(s: &mut Sink) { s.record(1); }\n",
            ),
        ]);
        assert!(summary_of(&g, &e, "drive").contains(Effect::Allocates));
    }

    #[test]
    fn cfg_test_callees_do_not_propagate() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn caller(h: &Helper) { h.check(); }\n\
             pub struct Helper;\n\
             #[cfg(test)]\nmod tests {\n\
                 impl super::Helper { pub fn check(&self) { panic!(\"test only\"); } }\n\
             }\n",
        )]);
        assert!(!summary_of(&g, &e, "caller").contains(Effect::Panics));
    }

    #[test]
    fn debug_asserts_and_integer_accumulation_never_seed() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn quiet(xs: &[u64]) -> u64 {\n\
                 let mut s = 0u64;\n\
                 for x in xs { debug_assert!(*x > 0); s += x; }\n\
                 s\n\
             }\n",
        )]);
        assert!(summary_of(&g, &e, "quiet").is_empty());
    }

    #[test]
    fn guard_flag_marks_top_level_sites_only() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn k(xs: &[u64], w: usize) -> u64 {\n\
                 assert!(w > 0);\n\
                 let mut s = 0u64;\n\
                 for i in 0..w { s ^= xs[i]; }\n\
                 s\n\
             }\n",
        )]);
        let id = g
            .fns
            .iter()
            .position(|d| d.name == "k")
            .expect("fixture fn");
        let guards: Vec<bool> = e.seeds[id].iter().map(|s| s.guard).collect();
        assert_eq!(guards, vec![true, false], "top-level assert guards, nested index does not");
    }

    #[test]
    fn ledger_and_prng_impl_methods_are_type_level_seeds() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub struct AirTimeLedger { bits: u64 }\n\
             impl AirTimeLedger { pub fn tag_responses(&mut self, n: u64) { self.bits = self.bits + n; } }\n\
             pub struct SplitMix64 { s: u64 }\n\
             impl SplitMix64 { pub fn next_u64(&mut self) -> u64 { self.s } }\n",
        )]);
        assert!(summary_of(&g, &e, "tag_responses").contains(Effect::ChargesAirTime));
        assert!(summary_of(&g, &e, "next_u64").contains(Effect::DrawsRandomness));
    }

    #[test]
    fn summaries_are_monotone_over_direct_seeds_and_call_edges() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn top() { mid(); other(); }\n\
             pub fn mid() -> Vec<u8> { Vec::new() }\n\
             pub fn other(x: Option<u8>) -> u8 { x.unwrap() }\n",
        )]);
        for id in 0..g.fns.len() {
            assert!(e.summary[id].is_superset(e.direct[id]), "direct ⊆ summary");
            for call in g.calls_from(id) {
                if let Resolution::Resolved(ts) = &call.resolution {
                    for &t in ts {
                        if !g.fns[t].cfg_test {
                            assert!(
                                e.summary[id].is_superset(e.summary[t]),
                                "callee summary ⊆ caller summary"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn json_dump_is_schema_tagged_and_lists_nonempty_fns_only() {
        let (_, g, e) = workspace(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn noisy(x: Option<u8>) -> u8 { x.unwrap() }\npub fn silent() {}\n",
        )]);
        let doc = e.to_json(&g);
        assert_eq!(
            doc.get("schema").and_then(Value::as_str),
            Some("rfid-effects/v1")
        );
        let fns = doc.get("fns").and_then(Value::as_arr).expect("fns array");
        assert_eq!(fns.len(), 1, "only the fn with a non-empty summary");
        assert_eq!(
            fns[0].get("name").and_then(Value::as_str),
            Some("noisy")
        );
        let crates = doc.get("crates").expect("crates object");
        assert_eq!(crates.get("sim").and_then(Value::as_num), Some(1.0));
        // The dump parses back as JSON (hand-rolled writer sanity).
        assert!(Value::parse(&doc.write()).is_ok());
    }
}
