//! A token-level lexer over masked source.
//!
//! [`mask_source`](crate::mask::mask_source) blanks comments and literals
//! (strings, chars) to spaces, so what remains is pure code plus
//! whitespace. This module cuts that residue into a flat token stream —
//! identifiers, integer and float literals, lifetimes, and punctuation —
//! each token carrying its byte span and 1-based line. The scope tree
//! ([`crate::scope`]) and the v2 rules are built on this stream instead of
//! raw substring search, so a rule can ask "is this `assert!` nested inside
//! a loop of a library `fn`?" rather than "does this line mention
//! `assert!`?".
//!
//! The stream is *loss-free over code*: every non-whitespace byte of the
//! masked text belongs to exactly one token, and [`reserialize`] rebuilds
//! the masked text byte-for-byte. A property test in
//! `tests/workspace_property.rs` holds that invariant over every Rust file
//! in this repository, which pins the lexer and the masker to each other.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `assert`, `counts`, …).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2.5e3`, `7f64`).
    Float,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
    /// Punctuation, with multi-byte operators (`::`, `==`, `>>=`) kept
    /// whole.
    Punct,
}

/// One token of the masked source.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte, into the masked text.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
}

impl Token {
    /// The token's text, sliced out of the masked source it was lexed from.
    pub fn text<'a>(&self, masked: &'a str) -> &'a str {
        &masked[self.start..self.end]
    }
}

/// Multi-byte operators, longest first so greedy matching is correct.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=",
    "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "^=", "|=", "&=", "%=",
    "..",
];

/// Is `b` an identifier start byte? Non-ASCII bytes are treated as
/// identifier material so that (rare) Unicode identifiers stay in one
/// token and reserialization remains loss-free.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Is `b` an identifier continuation byte?
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex masked source into tokens. Whitespace separates tokens and is the
/// only thing not covered by the stream.
pub fn lex(masked: &str) -> Vec<Token> {
    let b = masked.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c == b' ' || c == b'\t' || c == b'\r' {
            i += 1;
            continue;
        }
        let start = i;
        let kind = if is_ident_start(c) {
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            i = lex_number(b, i);
            classify_number(&masked[start..i])
        } else if c == b'\'' {
            // Char literals are blanked by the masker, so a surviving
            // apostrophe introduces a lifetime or loop label.
            i += 1;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            if i == start + 1 {
                TokenKind::Punct // stray quote (malformed source)
            } else {
                TokenKind::Lifetime
            }
        } else {
            i = lex_punct(b, i);
            TokenKind::Punct
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
            line,
        });
    }
    tokens
}

/// Consume a numeric literal starting at `i`; returns the end offset.
///
/// Handles radix prefixes (`0x`, `0o`, `0b`), digit separators, fraction
/// parts, exponents (including the sign: `2.5e-3`), and type suffixes
/// (`1u64`, `7f64`). A `.` is consumed only when followed by a digit, so
/// `1..n` lexes as `1` `..` `n` and `1.max(2)` as `1` `.` `max`.
fn lex_number(b: &[u8], mut i: usize) -> usize {
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return i;
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
            i += 1;
        }
    }
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`) or the rest of an exponent-less
    // suffix like `e` in `1e` (malformed; swallow for robustness).
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    i
}

/// Int or float, judged from the literal's own text.
fn classify_number(text: &str) -> TokenKind {
    if text.starts_with("0x") || text.starts_with("0o") || text.starts_with("0b") {
        return TokenKind::Int;
    }
    let float = text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || text
            .bytes()
            .zip(text.bytes().skip(1))
            .any(|(a, b)| (a == b'e' || a == b'E') && (b.is_ascii_digit() || b == b'+' || b == b'-'));
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

/// Consume one punctuation token starting at `i` (greedy over the
/// multi-byte operator table); returns the end offset.
fn lex_punct(b: &[u8], i: usize) -> usize {
    for op in OPERATORS {
        let end = i + op.len();
        if end <= b.len() && &b[i..end] == op.as_bytes() {
            return end;
        }
    }
    i + 1
}

/// Rebuild the masked text from its token stream: whitespace skeleton plus
/// every token's bytes at its span. Equality with the true masked text is
/// the lexer/masker agreement invariant.
pub fn reserialize(tokens: &[Token], masked: &str) -> Vec<u8> {
    let mut out: Vec<u8> = masked
        .bytes()
        .map(|b| if b == b'\n' || b == b'\t' || b == b'\r' { b } else { b' ' })
        .collect();
    for t in tokens {
        out[t.start..t.end].copy_from_slice(&masked.as_bytes()[t.start..t.end]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_numbers_and_puncts_split() {
        let got = kinds("fn f(x: u64) -> u64 { x + 1 }");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["fn", "f", "(", "x", ":", "u64", ")", "->", "u64", "{", "x", "+", "1", "}"]
        );
        assert_eq!(got[0].0, TokenKind::Ident);
        assert_eq!(got[7].0, TokenKind::Punct, "-> is one token");
        assert_eq!(got[12].0, TokenKind::Int);
    }

    #[test]
    fn float_literals_are_classified() {
        for lit in ["1.0", "0.5", "2.5e3", "1e-9", "7f64", "3.25f32", "1_000.5"] {
            let got = kinds(lit);
            assert_eq!(got.len(), 1, "{lit} lexes as one token: {got:?}");
            assert_eq!(got[0].0, TokenKind::Float, "{lit}");
        }
        for lit in ["1", "0xFF", "1_000", "42u64", "0b1010", "0o777"] {
            let got = kinds(lit);
            assert_eq!(got.len(), 1, "{lit}: {got:?}");
            assert_eq!(got[0].0, TokenKind::Int, "{lit}");
        }
    }

    #[test]
    fn ranges_and_method_calls_on_ints_do_not_eat_the_dot() {
        let texts: Vec<(TokenKind, String)> = kinds("1..n");
        assert_eq!(texts[0], (TokenKind::Int, "1".into()));
        assert_eq!(texts[1], (TokenKind::Punct, "..".into()));
        let texts = kinds("1.max(2)");
        assert_eq!(texts[0], (TokenKind::Int, "1".into()));
        assert_eq!(texts[1], (TokenKind::Punct, ".".into()));
        assert_eq!(texts[2], (TokenKind::Ident, "max".into()));
    }

    #[test]
    fn lifetimes_lex_as_one_token() {
        let got = kinds("fn f<'a>(x: &'a str) {}");
        assert!(got.contains(&(TokenKind::Lifetime, "'a".to_string())), "{got:?}");
    }

    #[test]
    fn multibyte_operators_stay_whole() {
        let texts: Vec<String> = kinds("a >>= b..=c; d != e").into_iter().map(|(_, t)| t).collect();
        assert!(texts.contains(&">>=".to_string()));
        assert!(texts.contains(&"..=".to_string()));
        assert!(texts.contains(&"!=".to_string()));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nbb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn reserialization_is_exact() {
        let src = "fn f<'a>(x: &'a [u64]) -> f64 {\n    x[0] as f64 * 2.5e-3\n}\n";
        let toks = lex(src);
        assert_eq!(reserialize(&toks, src), src.as_bytes());
    }
}
