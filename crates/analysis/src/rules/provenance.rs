//! Rule `seed-provenance`: interprocedural seed-origin checking.
//!
//! v2's `seed-hygiene` reads the *text* of a PRNG constructor argument; it
//! cannot see `let s = 42; SplitMix64::new(s)`, let alone a literal routed
//! through two function calls. This rule asks the
//! [`dataflow`](crate::dataflow) pass where the seed value **came from**:
//! if the joined provenance of the argument expression is
//! [`Provenance::Literal`] or [`Provenance::External`] *through at least
//! one indirection* (a variable, parameter, const, or call — bare literal
//! arguments stay `seed-hygiene`'s finding, so the two rules never
//! double-report), the construction is flagged at the call site.
//!
//! `Unknown` origins are never flagged: the pass reports only origins it
//! can prove, so field reads, std calls, and mixed expressions stay quiet.

use super::{push, Finding, RuleId, DETERMINISM_CRATES};
use crate::callgraph::CallGraph;
use crate::dataflow::{split_args, Dataflow, Provenance};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, TargetKind};

/// PRNG type names whose `::new` takes a seed.
const PRNG_TYPES: &[&str] = &["SplitMix64", "XorShift32"];

/// Free/method constructor names whose first value argument is a seed.
const SEED_FNS: &[&str] = &["seed_from_u64"];

/// Run the rule over every fn in the call graph.
pub fn check_seed_provenance(
    files: &[SourceFile],
    graph: &CallGraph,
    flow: &Dataflow,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (f, def) in graph.fns.iter().enumerate() {
        let file = &files[def.file];
        if file.kind != TargetKind::Lib
            || !DETERMINISM_CRATES.contains(&file.crate_name.as_str())
            || def.cfg_test
        {
            continue;
        }
        let tree = file.scopes();
        for i in def.body_tokens.clone() {
            let tokens = file.tokens();
            if tokens[i].kind != TokenKind::Ident {
                continue;
            }
            let name = file.token_text(i);
            let is_ctor = (name == "new"
                && i >= 2
                && file.token_text(i - 1) == "::"
                && PRNG_TYPES.contains(&file.token_text(i - 2)))
                || SEED_FNS.contains(&name);
            if !is_ctor
                || i + 1 >= def.body_tokens.end
                || file.token_text(i + 1) != "("
            {
                continue;
            }
            let line = tokens[i].line;
            if file.in_test_region(line) {
                continue;
            }
            // Tokens inside a nested fn belong to that fn's analysis.
            let innermost = tree
                .enclosing_fn(tokens[i].start)
                .map(|(idx, _)| tree.scopes[idx].byte_range.start);
            if innermost != Some(def.byte_range.start) {
                continue;
            }
            let args = split_args(file, i, def.body_tokens.end);
            let Some(seed_arg) = args.first().cloned() else {
                continue;
            };
            // A bare literal (or literal arithmetic) argument has no
            // identifiers: that is seed-hygiene's finding, not ours.
            if !seed_arg
                .clone()
                .any(|j| tokens[j].kind == TokenKind::Ident)
            {
                continue;
            }
            let outcome = flow.eval_at(f, files, graph, seed_arg);
            if !outcome.indirect {
                continue;
            }
            let origin = match outcome.provenance {
                Provenance::Literal => "a hard-coded literal",
                Provenance::External => "a wall-clock/OS-entropy source",
                Provenance::SeedDerived | Provenance::Unknown => continue,
            };
            let ctor = if name == "new" {
                format!("{}::new", file.token_text(i - 2))
            } else {
                name.to_string()
            };
            push(
                findings.as_mut(),
                file,
                RuleId::SeedProvenance,
                line,
                format!(
                    "{ctor} seed argument derives from {origin} (traced through \
                     assignments and calls, not spelled here); route it through \
                     rfid_hash::stream_seed from a seed parameter"
                ),
            );
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::dataflow::Dataflow;
    use crate::source::{SourceFile, TargetKind};

    fn run(texts: &[(&str, &str, &str)]) -> Vec<Finding> {
        let files: Vec<SourceFile> = texts
            .iter()
            .map(|(p, c, t)| SourceFile::new(p, c, TargetKind::Lib, t))
            .collect();
        let graph = CallGraph::build(&files);
        let flow = Dataflow::compute(&files, &graph);
        check_seed_provenance(&files, &graph, &flow)
    }

    #[test]
    fn literal_through_a_local_variable_fires() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f() { let s = 42u64; let _r = SplitMix64::new(s); }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::SeedProvenance);
        assert!(found[0].message.contains("hard-coded literal"), "{}", found[0].message);
    }

    #[test]
    fn literal_two_calls_deep_fires_at_the_constructor() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn top() { middle(0xDEAD_BEEF); }\n\
             pub fn middle(s: u64) { bottom(s); }\n\
             pub fn bottom(s: u64) { let _r = SplitMix64::new(s); }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3, "fires at the construction site");
    }

    #[test]
    fn bare_literal_arguments_are_seed_hygienes_territory() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f() { let _r = SplitMix64::new(42); }\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn seed_parameters_pass() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f(seed: u64) { let _r = SplitMix64::new(seed); }\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn wall_clock_seeds_fire_interprocedurally() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn clock_seed() -> u64 { std::time::Instant::now() }\n\
             pub fn f() { let _r = SplitMix64::new(clock_seed()); }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("wall-clock"), "{}", found[0].message);
    }

    #[test]
    fn test_regions_and_out_of_scope_crates_pass() {
        let found = run(&[(
            "crates/bench/src/lib.rs",
            "bench",
            "pub fn f() { let s = 42u64; let _r = SplitMix64::new(s); }\n",
        )]);
        assert!(found.is_empty(), "bench is not determinism-scoped");
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "#[cfg(test)]\nmod tests {\n    fn t() { let s = 7u64; let _ = SplitMix64::new(s); }\n}\n",
        )]);
        assert!(found.is_empty(), "tests may use fixed seeds");
    }

    #[test]
    fn mixed_provenance_is_not_flagged() {
        let found = run(&[(
            "crates/sim/src/lib.rs",
            "sim",
            "pub fn f(seed: u64) { let s = seed ^ 3; let _r = SplitMix64::new(s); }\n",
        )]);
        assert!(found.is_empty(), "mixed seed+literal joins to Unknown: {found:?}");
    }

    #[test]
    fn literal_seeded_callers_taint_helper_params() {
        // The inverse direction of the two-deep test: the literal lives at
        // the *call site*, the constructor in the helper.
        let found = run(&[(
            "crates/hash/src/lib.rs",
            "hash",
            "pub fn make(seed: u64) -> u64 { seed }\n",
        ), (
            "crates/sim/src/lib.rs",
            "sim",
            "use rfid_hash::make;\n\
             pub fn helper(s: u64) { let _r = XorShift32::new(s); }\n\
             pub fn top() { helper(1234); }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].path.ends_with("sim/src/lib.rs"));
    }
}
