//! Rule `snapshot-surface`: every stateful estimator must expose a
//! mergeable snapshot surface, or carry a justified allow.
//!
//! ROADMAP item 2 (multi-reader continuous estimation) rides on the PR 9
//! mergeable-sketch layer: an estimator participates in cross-reader
//! merging only if its protocol state can leave the process — an
//! `impl Snapshot for X`, or an inherent exporter (`sketch`/`snapshot`/
//! `to_snapshot`) returning a snapshot-capable sketch, the way
//! `HllPp::sketch` and `LogLogBeta::sketch` do. Today only three sketch
//! kinds serialize; this rule turns that leftover from a prose remark
//! into an enumerable burndown: every other `impl CardinalityEstimator`
//! is flagged until it either grows an exporter or records *why* it
//! cannot have one (the one-shot paper protocols re-run frames instead
//! of keeping mergeable state) in an `analysis:allow(snapshot-surface)`
//! justification.
//!
//! "Holds mid-protocol state" is over-approximated as "is not a unit
//! struct": a fieldless estimator has nothing to snapshot and is exempt.
//! Config-only field structs are *not* auto-exempt — distinguishing
//! config from protocol state syntactically is not robust, so they
//! document themselves through the allow text instead.

use super::{Finding, RuleId};
use crate::callgraph::CallGraph;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The estimator trait whose implementors need a snapshot surface.
const ESTIMATOR_TRAIT: &str = "CardinalityEstimator";

/// The trait that *is* the snapshot surface.
const SNAPSHOT_TRAIT: &str = "Snapshot";

/// Inherent methods accepted as snapshot evidence: exporters that hand
/// the caller a mergeable sketch.
const EVIDENCE_METHODS: &[&str] = &["sketch", "snapshot", "to_snapshot"];

/// Run the rule over the whole scanned workspace.
pub fn check_snapshot_surface(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut snapshot_impls: BTreeSet<&str> = BTreeSet::new();
    let mut unit_structs: BTreeSet<&str> = BTreeSet::new();
    for file in files {
        for (trait_name, type_name, _) in file.scopes().trait_impls() {
            if trait_name == SNAPSHOT_TRAIT {
                snapshot_impls.insert(type_name);
            }
        }
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            // `struct X;` — fieldless, nothing to snapshot. `struct X {`
            // and `struct X(` both hold state and stay in scope.
            if file.token_text(i) == "struct"
                && tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && i + 2 < tokens.len()
                && file.token_text(i + 2) == ";"
            {
                unit_structs.insert(file.token_text(i + 1));
            }
        }
    }
    for file in files {
        for (trait_name, type_name, scope) in file.scopes().trait_impls() {
            if trait_name != ESTIMATOR_TRAIT
                || unit_structs.contains(type_name)
                || snapshot_impls.contains(type_name)
            {
                continue;
            }
            let has_exporter = EVIDENCE_METHODS.iter().any(|m| {
                graph
                    .find_fns(Some(type_name), m)
                    .iter()
                    .any(|&id| !graph.fns[id].cfg_test)
            });
            if has_exporter {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::SnapshotSurface,
                path: file.rel_path.clone(),
                line: scope.lines.start,
                message: format!(
                    "estimator `{type_name}` holds mid-protocol state but exposes no \
                     snapshot surface: no `impl {SNAPSHOT_TRAIT} for {type_name}` and no \
                     inherent `sketch`/`snapshot`/`to_snapshot` exporter, so multi-reader \
                     merging (ROADMAP item 2) cannot use it; add a sketch exporter or \
                     record why the protocol cannot keep mergeable state in an allow"
                ),
                excerpt: file.line(scope.lines.start).trim().to_string(),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TargetKind;

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(path, text)| SourceFile::new(path, "baselines", TargetKind::Lib, text))
            .collect();
        let graph = CallGraph::build(&sources);
        check_snapshot_surface(&sources, &graph)
    }

    #[test]
    fn a_stateful_estimator_without_a_surface_fires_at_the_impl_line() {
        let found = run(&[(
            "crates/baselines/src/zoe.rs",
            "pub struct Zoe { frames: usize }\n\
             impl CardinalityEstimator for Zoe {\n\
                 fn name(&self) -> &str { \"zoe\" }\n\
             }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::SnapshotSurface);
        assert_eq!(found[0].line, 2, "points at the impl header");
        assert!(found[0].message.contains("`Zoe`"), "{}", found[0].message);
    }

    #[test]
    fn a_snapshot_impl_anywhere_in_the_workspace_counts() {
        let found = run(&[
            (
                "crates/baselines/src/hllpp.rs",
                "pub struct HllPp { p: u8 }\n\
                 impl CardinalityEstimator for HllPp { fn name(&self) -> &str { \"hllpp\" } }\n",
            ),
            (
                "crates/core/src/sketch.rs",
                "impl Snapshot for HllPp { fn snapshot(&self) -> Vec<u8> { Vec::new() } }\n",
            ),
        ]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn an_inherent_sketch_exporter_counts() {
        let found = run(&[(
            "crates/baselines/src/llbeta.rs",
            "pub struct LogLogBeta { p: u8 }\n\
             impl LogLogBeta { pub fn sketch(&self) -> u8 { self.p } }\n\
             impl CardinalityEstimator for LogLogBeta { fn name(&self) -> &str { \"llbeta\" } }\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn a_test_only_exporter_is_not_evidence() {
        let found = run(&[(
            "crates/baselines/src/pet.rs",
            "pub struct Pet { p: u8 }\n\
             impl CardinalityEstimator for Pet { fn name(&self) -> &str { \"pet\" } }\n\
             #[cfg(test)]\nmod tests {\n\
                 impl super::Pet { pub fn snapshot(&self) -> u8 { 0 } }\n\
             }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn unit_struct_estimators_are_exempt() {
        let found = run(&[(
            "crates/baselines/src/phantom.rs",
            "pub struct Phantom;\n\
             impl CardinalityEstimator for Phantom { fn name(&self) -> &str { \"phantom\" } }\n",
        )]);
        assert!(found.is_empty(), "fieldless estimators have no state: {found:?}");
    }

    #[test]
    fn tuple_structs_hold_state_and_stay_in_scope() {
        let found = run(&[(
            "crates/baselines/src/art.rs",
            "pub struct Art(pub u8);\n\
             impl CardinalityEstimator for Art { fn name(&self) -> &str { \"art\" } }\n",
        )]);
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn non_estimator_impls_are_ignored() {
        let found = run(&[(
            "crates/baselines/src/frame.rs",
            "pub struct Frame { w: usize }\nimpl Display for Frame {}\n",
        )]);
        assert!(found.is_empty(), "{found:?}");
    }
}
