//! The four original determinism rules: nondeterministic inputs, library
//! unwraps, float reduction in parallel folds, and seed hygiene.

use super::{is_determinism_scope, push, Finding, RuleId};
use crate::source::{SourceFile, TargetKind};

/// Rule — nondeterministic inputs in library code: wall clocks
/// (`Instant::now`, `SystemTime`), OS entropy (`thread_rng`,
/// `rand::random`), and hash-ordered collections (`HashMap`/`HashSet`,
/// whose iteration order varies per process thanks to `RandomState`).
pub(super) fn check_nondeterminism(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !is_determinism_scope(file) {
        return;
    }
    const PATTERNS: &[(&str, &str)] = &[
        ("Instant::now", "wall-clock time is nondeterministic; thread timing must never influence results"),
        ("SystemTime", "system time is nondeterministic; derive timestamps from the simulation clock instead"),
        ("thread_rng", "OS-entropy RNG breaks replay; seed a deterministic PRNG via rfid_hash::stream_seed"),
        ("rand::random", "OS-entropy RNG breaks replay; seed a deterministic PRNG via rfid_hash::stream_seed"),
        ("HashMap", "hash-map iteration order is randomized per process; use BTreeMap or sort before anything order-dependent"),
        ("HashSet", "hash-set iteration order is randomized per process; use BTreeSet or restrict to membership tests"),
    ];
    for line in 1..=file.line_count() {
        if file.in_test_region(line) {
            continue;
        }
        let masked = file.masked_line(line);
        for (pattern, why) in PATTERNS {
            if masked.contains(pattern) {
                push(findings, file, RuleId::Nondeterminism, line, format!("{pattern}: {why}"));
            }
        }
    }
}

/// Rule — `unwrap()` / `expect(` outside tests, benches, and binaries.
/// A panic in a library crate tears down a whole Monte-Carlo run; hot
/// paths must return errors (or restructure so the failure is impossible).
pub(super) fn check_unwrap(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind == TargetKind::Bin {
        return;
    }
    for line in 1..=file.line_count() {
        if file.in_test_region(line) {
            continue;
        }
        let masked = file.masked_line(line);
        for pattern in [".unwrap()", ".expect("] {
            if masked.contains(pattern) {
                push(
                    findings,
                    file,
                    RuleId::Unwrap,
                    line,
                    format!(
                        "{pattern} in library code; return an error or restructure so failure is impossible"
                    ),
                );
            }
        }
    }
}

/// Rule — floating-point accumulation inside a parallel fold closure.
/// f64 addition is not associative, so `+=`/`sum()` over floats inside
/// `par_fold`-family closures makes the result depend on chunking. The
/// deterministic pattern (PR 2): collect per-item records in the fold and
/// do one **sequential** Welford/percentile pass over the merged,
/// trial-ordered list.
pub(super) fn check_float_reduction(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !is_determinism_scope(file) {
        return;
    }
    let regions = file.call_regions(&[
        "par_fold",
        "par_fold_with_threads",
        "scope", // std::thread::scope fork/join blocks
    ]);
    for region in regions {
        // Float-ness is judged over the whole call region: the accumulator
        // type (`|| 0.0f64`) and the `+=` that feeds it are usually on
        // different lines of the same closure.
        let region_floaty = region.clone().any(|line| {
            let masked = file.masked_line(line);
            masked.contains("f64") || masked.contains("f32") || has_float_literal(masked)
        });
        for line in region {
            if file.in_test_region(line) {
                continue;
            }
            let masked = file.masked_line(line);
            let sums = masked.contains(".sum::<f64>") || masked.contains(".sum::<f32>");
            let accumulates = masked.contains("+=") || masked.contains(".sum()");
            if sums || (region_floaty && accumulates) {
                push(
                    findings,
                    file,
                    RuleId::FloatReduction,
                    line,
                    "float accumulation inside a parallel fold: f64 addition is not associative, \
                     so the result depends on chunking; collect records and aggregate in one \
                     sequential pass instead"
                        .to_string(),
                );
            }
        }
    }
}

/// Does the masked line contain a float literal (`1.0`, `2.5e3`)?
fn has_float_literal(masked: &str) -> bool {
    let b = masked.as_bytes();
    (1..b.len().saturating_sub(1)).any(|i| {
        b[i] == b'.' && b[i - 1].is_ascii_digit() && b[i + 1].is_ascii_digit()
    })
}

/// Rule — seed hygiene: a PRNG constructed from an integer literal or
/// from ad-hoc seed arithmetic (`seed + i`, `seed ^ 0xABCD`) instead of
/// `stream_seed`. Affine seed schedules correlate "independent" streams
/// (the PR 2 bug class); `stream_seed` routes every derivation through a
/// full-avalanche mix.
pub(super) fn check_seed_hygiene(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !is_determinism_scope(file) {
        return;
    }
    const CONSTRUCTORS: &[&str] = &["SplitMix64::new", "XorShift32::new", "seed_from_u64"];
    for line in 1..=file.line_count() {
        if file.in_test_region(line) {
            continue;
        }
        let masked = file.masked_line(line);
        for ctor in CONSTRUCTORS {
            let Some(pos) = masked.find(ctor) else { continue };
            let rest = &masked[pos + ctor.len()..];
            let Some(arg) = first_argument(rest) else { continue };
            if let Some(problem) = seed_argument_problem(&arg) {
                push(
                    findings,
                    file,
                    RuleId::SeedHygiene,
                    line,
                    format!("{ctor}({arg}): {problem}; derive seeds with rfid_hash::stream_seed"),
                );
            }
        }
    }
}

/// Extract the argument list of a call whose `(` starts `rest` (single
/// line only — multi-line constructor calls are rare enough to ignore).
fn first_argument(rest: &str) -> Option<String> {
    let b = rest.as_bytes();
    if b.first() != Some(&b'(') {
        return None;
    }
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate() {
        if c == b'(' {
            depth += 1;
        } else if c == b')' {
            depth -= 1;
            if depth == 0 {
                return Some(rest[1..i].trim().to_string());
            }
        }
    }
    None
}

/// Why a seed argument is suspicious, or `None` if it looks fine.
fn seed_argument_problem(arg: &str) -> Option<&'static str> {
    if arg.is_empty() || arg.contains("stream_seed") {
        return None;
    }
    let stripped: String = arg.chars().filter(|c| *c != '_').collect();
    let is_literal = stripped
        .strip_prefix("0x")
        .map(|h| h.chars().all(|c| c.is_ascii_hexdigit()))
        .unwrap_or_else(|| stripped.chars().all(|c| c.is_ascii_digit()));
    if is_literal {
        return Some("seeded from an integer literal");
    }
    // Arithmetic at paren depth zero (`seed ^ 0xABCD`, `seed + i as u64`)
    // is an ad-hoc stream split. Operators *inside* a call's parentheses
    // (`stream_seed(seed, i * 31)`, `mix_pair(a, b)`) belong to a
    // deliberate derivation and pass.
    let mut depth = 0u32;
    for c in arg.chars() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            '+' | '^' | '*' | '|' | '<' if depth == 0 => {
                return Some("seeded from ad-hoc arithmetic, which correlates streams");
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::tests::rules_fired;
    use super::super::{check_file, RuleId};
    use crate::source::{SourceFile, TargetKind};

    #[test]
    fn clean_code_has_no_findings() {
        assert!(rules_fired("pub fn ok(seed: u64) -> u64 { seed.wrapping_mul(3) }\n").is_empty());
    }

    #[test]
    fn wall_clock_and_entropy_are_flagged() {
        assert_eq!(rules_fired("fn f() { let t = std::time::Instant::now(); }\n"), vec![RuleId::Nondeterminism]);
        assert_eq!(rules_fired("fn f() { let r: u8 = rand::random(); }\n"), vec![RuleId::Nondeterminism]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        assert!(rules_fired("// Instant::now() would be wrong here\nfn f() {}\n").is_empty());
        assert!(rules_fired("fn f() -> &'static str { \"Instant::now\" }\n").is_empty());
    }

    #[test]
    fn unwrap_in_lib_fires_but_not_in_tests() {
        assert_eq!(rules_fired("fn f(x: Option<u8>) -> u8 { x.unwrap() }\n"), vec![RuleId::Unwrap]);
        let text = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(rules_fired(text).is_empty());
    }

    #[test]
    fn unwrap_in_bin_target_is_allowed() {
        let f = SourceFile::new(
            "crates/experiments/src/bin/fig07.rs",
            "experiments",
            TargetKind::Bin,
            "fn main() { std::env::args().next().unwrap(); }\n",
        );
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn unwrap_or_variants_do_not_fire() {
        assert!(rules_fired("fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n").is_empty());
        assert!(rules_fired("fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 1) }\n").is_empty());
    }

    #[test]
    fn float_accumulation_in_par_fold_fires() {
        let text = "\
fn f(items: &[f64]) -> f64 {
    par_fold(
        items,
        1,
        || 0.0f64,
        |acc, x| *acc += x,
        |acc, o| *acc += o,
    )
}
";
        let fired = rules_fired(text);
        assert!(fired.contains(&RuleId::FloatReduction), "{fired:?}");
    }

    #[test]
    fn integer_accumulation_in_par_fold_is_fine() {
        let text = "\
fn f(items: &[u64]) -> u64 {
    par_fold(items, 1, || 0u64, |acc, x| *acc += x, |acc, o| *acc += o)
}
";
        assert!(rules_fired(text).is_empty());
    }

    #[test]
    fn float_accumulation_outside_any_fold_is_fine() {
        assert!(rules_fired("fn f(xs: &[f64]) -> f64 { let mut s = 0.0; for x in xs { s += x; } s }\n").is_empty());
    }

    #[test]
    fn literal_and_arithmetic_seeds_fire() {
        assert_eq!(rules_fired("fn f() { let r = SplitMix64::new(42); }\n"), vec![RuleId::SeedHygiene]);
        assert_eq!(rules_fired("fn f() { let r = SplitMix64::new(0xDEAD_BEEF); }\n"), vec![RuleId::SeedHygiene]);
        assert_eq!(rules_fired("fn f(seed: u64, i: u64) { let r = StdRng::seed_from_u64(seed + i); }\n"), vec![RuleId::SeedHygiene]);
    }

    #[test]
    fn stream_seed_and_passthrough_seeds_are_fine() {
        assert!(rules_fired("fn f(seed: u64, i: u64) { let r = SplitMix64::new(stream_seed(seed, i)); }\n").is_empty());
        assert!(rules_fired("fn f(seed: u64) { let r = SplitMix64::new(seed).next_u64(); }\n").is_empty());
        assert!(rules_fired("fn f(ctx: &Ctx) { let r = StdRng::seed_from_u64(ctx.seed); }\n").is_empty());
    }

    #[test]
    fn determinism_rules_skip_out_of_scope_crates() {
        let f = SourceFile::new(
            "crates/bench/src/lib.rs",
            "bench",
            TargetKind::Lib,
            "fn f() { let t = Instant::now(); let r = SplitMix64::new(1); }\n",
        );
        // Only the unwrap rule applies to bench; no unwraps here, so clean.
        assert!(check_file(&f).is_empty());
    }
}
