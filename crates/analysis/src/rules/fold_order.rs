//! Rule `fold-order`: parallel fold closures may not *call into*
//! order-sensitive float accumulation.
//!
//! `float-reduction` (v2) catches `+=`/`.sum()` over floats written
//! directly inside a `par_fold`-family closure. It is blind to the same
//! accumulation hidden one call away: a closure that calls
//! `merge_stats(acc, x)` where the merge does `acc.mean += …` is exactly
//! as chunking-dependent, but no float op appears in the closure's text.
//! This rule closes that hole with the call graph: it computes the set of
//! workspace fns from which a *float reducer* (a fn whose signature
//! mentions `f64`/`f32` and whose body accumulates with `+=`/`.sum()`) is
//! reachable, then flags every resolved call site inside a
//! `par_fold`/`par_fold_with_threads`/`scope` argument region whose
//! callee lands in that set. Sites with a genuine order-insensitivity
//! argument carry an inline `// analysis:allow(fold-order): reason`.

use super::{is_determinism_scope, push, Finding, RuleId};
use crate::callgraph::CallGraph;
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The fork/join entry points whose argument regions are scanned.
const FOLD_CALLEES: &[&str] = &["par_fold", "par_fold_with_threads", "scope"];

/// Run the rule over every parallel-fold region in determinism-scoped
/// files.
pub fn check_fold_order(files: &[SourceFile], graph: &CallGraph) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tainted = reducer_closure(files, graph);
    if tainted.is_empty() {
        return findings;
    }
    for site in &graph.calls {
        // Method calls are resolved by name over every workspace impl —
        // too over-approximated to flag on (documented limit); the fold
        // entry points themselves always sit inside their own argument
        // region and are the machinery, not a reducer call.
        if site.method_call || FOLD_CALLEES.contains(&site.name.as_str()) {
            continue;
        }
        let crate::callgraph::Resolution::Resolved(targets) = &site.resolution else {
            continue;
        };
        if !targets.iter().any(|t| tainted.contains(t)) {
            continue;
        }
        let file = &files[site.file];
        if !is_determinism_scope(file) || file.in_test_region(site.line) {
            continue;
        }
        let in_fold_region = file
            .call_regions(FOLD_CALLEES)
            .iter()
            .any(|r| r.contains(&site.line));
        if !in_fold_region {
            continue;
        }
        push(
            findings.as_mut(),
            file,
            RuleId::FoldOrder,
            site.line,
            format!(
                "`{}` is called inside a parallel fold and transitively performs \
                 order-sensitive float accumulation; f64 addition is not associative, so the \
                 result depends on chunking — collect records and reduce sequentially, or \
                 justify with an inline allow",
                site.name,
            ),
        );
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.message == b.message);
    findings
}

/// Fn ids from which a direct float reducer is reachable (including the
/// reducers themselves): the reverse transitive closure over resolved
/// **non-method** call edges. Method edges are the name-keyed
/// over-approximation; propagating taint through them floods the set with
/// every caller of `push`/`map`/`merge`-shaped names.
fn reducer_closure(files: &[SourceFile], graph: &CallGraph) -> BTreeSet<usize> {
    let mut tainted: BTreeSet<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| is_float_reducer(&files[d.file], d))
        .map(|(i, _)| i)
        .collect();
    loop {
        let mut grew = false;
        for site in &graph.calls {
            if site.method_call {
                continue;
            }
            let crate::callgraph::Resolution::Resolved(targets) = &site.resolution else {
                continue;
            };
            if targets.iter().any(|t| tainted.contains(t)) && tainted.insert(site.caller) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    tainted
}

/// Direct reducer: the fn's header names a float type and its body
/// accumulates (`+=`, `.sum()`, `.product()`). Judged over masked lines,
/// mirroring `float-reduction`'s heuristic.
fn is_float_reducer(file: &SourceFile, def: &crate::callgraph::FnDef) -> bool {
    let tokens = file.tokens();
    if def.body_tokens.is_empty() {
        return false;
    }
    let floaty_header = def
        .header_tokens
        .clone()
        .any(|i| matches!(file.token_text(i), "f64" | "f32"));
    if !floaty_header {
        return false;
    }
    let first_line = tokens[def.body_tokens.start].line;
    let last_line = tokens[def.body_tokens.end - 1].line;
    (first_line..=last_line).any(|line| {
        let masked = file.masked_line(line);
        masked.contains("+=")
            || masked.contains(".sum()")
            || masked.contains(".sum::<f")
            || masked.contains(".product()")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::source::{SourceFile, TargetKind};

    fn run(text: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(
            "crates/sim/src/lib.rs",
            "sim",
            TargetKind::Lib,
            text,
        )];
        let graph = CallGraph::build(&files);
        check_fold_order(&files, &graph)
    }

    const REDUCER: &str = "pub fn merge(acc: &mut f64, x: f64) {\n    *acc += x;\n}\n";

    #[test]
    fn reducer_called_in_fold_closure_fires() {
        let found = run(&format!(
            "{REDUCER}pub fn drive(xs: &[f64]) {{\n    par_fold(xs, |acc, x| {{\n        merge(acc, *x);\n    }});\n}}\n"
        ));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::FoldOrder);
        assert!(found[0].message.contains("`merge`"), "{}", found[0].message);
    }

    #[test]
    fn reducer_two_calls_deep_fires() {
        let found = run(&format!(
            "{REDUCER}pub fn shim(acc: &mut f64, x: f64) {{ merge(acc, x); }}\n\
             pub fn drive(xs: &[f64]) {{\n    par_fold(xs, |acc, x| {{\n        shim(acc, *x);\n    }});\n}}\n"
        ));
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("`shim`"), "{}", found[0].message);
    }

    #[test]
    fn integer_accumulation_passes() {
        let found = run(
            "pub fn bump(acc: &mut u64) { *acc += 1; }\n\
             pub fn drive(xs: &[u64]) {\n    par_fold(xs, |acc, _x| {\n        bump(acc);\n    });\n}\n",
        );
        assert!(found.is_empty(), "u64 += is order-safe: {found:?}");
    }

    #[test]
    fn reducer_called_outside_a_fold_passes() {
        let found = run(&format!(
            "{REDUCER}pub fn sequential(xs: &[f64]) -> f64 {{\n    let mut acc = 0.0;\n    for x in xs {{ merge(&mut acc, *x); }}\n    acc\n}}\n"
        ));
        assert!(found.is_empty(), "sequential reduction is fine: {found:?}");
    }

    #[test]
    fn float_fn_without_accumulation_passes() {
        let found = run(
            "pub fn scale(x: f64) -> f64 { x * 2.0 }\n\
             pub fn drive(xs: &[f64]) {\n    par_fold(xs, |acc, x| {\n        scale(*x);\n    });\n}\n",
        );
        assert!(found.is_empty(), "pure float math is order-free: {found:?}");
    }

    #[test]
    fn non_determinism_crates_pass() {
        let files = vec![SourceFile::new(
            "crates/bench/src/lib.rs",
            "bench",
            TargetKind::Lib,
            "pub fn merge(acc: &mut f64, x: f64) { *acc += x; }\n\
             pub fn drive(xs: &[f64]) {\n    par_fold(xs, |acc, x| {\n        merge(acc, *x);\n    });\n}\n",
        )];
        let graph = CallGraph::build(&files);
        let found = check_fold_order(&files, &graph);
        assert!(found.is_empty(), "{found:?}");
    }
}
