//! Rules `float-sanity` and `cast-truncation`: numeric faithfulness.
//!
//! `float-sanity` watches the estimator-math crates for idioms that are
//! exact-precision traps: `==`/`!=` against float literals, the
//! catastrophic-cancellation pattern `(1.0 - x).ln()` (use `ln_1p`), and
//! machine-epsilon "equality" (`.abs() < f64::EPSILON`, which is just `==`
//! in disguise for values above ~2).
//!
//! `cast-truncation` watches the frame/hash crates for bare narrowing
//! casts (`as u8`/`u16`/`u32`): frame and slot widths flow through u64
//! hash words, and a bare cast silently truncates if a wider value ever
//! reaches it. Casts whose receiver visibly shifts away the high bits
//! (`(h >> 32) as u32`) are deliberate truncations and exempt, as are
//! casts of integer literals. `as usize` is not flagged: every cast to
//! usize in these crates starts from u32-or-narrower and targets 64-bit
//! platforms (see ANALYSIS.md).

use super::{push, Finding, RuleId, CAST_TRUNCATION_CRATES, FLOAT_SANITY_CRATES};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, TargetKind};

pub(super) fn check_float_sanity(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != TargetKind::Lib || !FLOAT_SANITY_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let tokens = file.tokens();
    for (i, tok) in tokens.iter().enumerate() {
        if file.in_test_region(tok.line) {
            continue;
        }
        let text = file.token_text(i);
        if tok.kind != TokenKind::Punct {
            continue;
        }
        match text {
            // --- exact equality against a float literal ---------------
            "==" | "!=" => {
                let float_beside = [i.wrapping_sub(1), i + 1].iter().any(|&j| {
                    tokens.get(j).is_some_and(|t| t.kind == TokenKind::Float)
                });
                if float_beside {
                    push(
                        findings,
                        file,
                        RuleId::FloatSanity,
                        tok.line,
                        format!(
                            "exact float {text} comparison; computed values rarely hit a \
                             literal exactly — use total_cmp, a relative tolerance, or \
                             suppress if this checks a caller-passed sentinel verbatim"
                        ),
                    );
                }
            }
            // --- (1.0 - x).ln() → (-x).ln_1p() ------------------------
            ")" if is_ln_call(file, i)
                && paren_group_is_one_minus(file, i) =>
            {
                push(
                    findings,
                    file,
                    RuleId::FloatSanity,
                    tok.line,
                    "(1.0 - x).ln() loses all precision as x -> 0 (catastrophic \
                     cancellation); use (-x).ln_1p()"
                        .to_string(),
                );
            }
            // --- .abs() < f64::EPSILON --------------------------------
            "<" | "<=" if abs_call_ends_at(file, i) && epsilon_follows(file, i) => {
                push(
                    findings,
                    file,
                    RuleId::FloatSanity,
                    tok.line,
                    format!(
                        ".abs() {text} EPSILON is an equality test in disguise (always \
                         false for values above ~2); use a relative tolerance scaled to \
                         the operands"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Is token `close` (a `)`) immediately followed by `.ln` `(` `)` —
/// i.e. is this paren group the receiver of an `.ln()` call?
fn is_ln_call(file: &SourceFile, close: usize) -> bool {
    let tokens = file.tokens();
    close + 4 < tokens.len()
        && file.token_text(close + 1) == "."
        && file.token_text(close + 2) == "ln"
        && file.token_text(close + 3) == "("
        && file.token_text(close + 4) == ")"
}

/// Does the paren group ending at token `close` start with `1.0 -` (or
/// `1. -` spelled any way that lexes as the float one)?
fn paren_group_is_one_minus(file: &SourceFile, close: usize) -> bool {
    let tokens = file.tokens();
    // Walk backward to the matching `(`.
    let mut depth = 0i32;
    let mut open = None;
    for j in (0..=close).rev() {
        match file.token_text(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    open = Some(j);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(open) = open else { return false };
    let first = open + 1;
    first + 1 < close
        && tokens[first].kind == TokenKind::Float
        && file.token_text(first).trim_end_matches("f64").trim_end_matches("f32")
            .parse::<f64>()
            == Ok(1.0)
        && file.token_text(first + 1) == "-"
}

/// Do the three tokens before `op` spell `abs ( )`?
fn abs_call_ends_at(file: &SourceFile, op: usize) -> bool {
    op >= 3
        && file.token_text(op - 3) == "abs"
        && file.token_text(op - 2) == "("
        && file.token_text(op - 1) == ")"
}

/// Does `EPSILON` (optionally `f64 :: EPSILON` / `f32 :: EPSILON`) follow
/// the comparison operator at `op`? Named tolerance consts (`EPS`,
/// `TOLERANCE`) are deliberate and do not match.
fn epsilon_follows(file: &SourceFile, op: usize) -> bool {
    let tokens = file.tokens();
    let next = |j: usize| tokens.get(j).map(|_| file.token_text(j));
    match next(op + 1) {
        Some("EPSILON") => true,
        Some("f64") | Some("f32") => {
            next(op + 2) == Some("::") && next(op + 3) == Some("EPSILON")
        }
        _ => false,
    }
}

/// Cast targets the rule considers narrowing. `u64`/`usize` are excluded:
/// u64 is the native hash-word width, and every `as usize` in the scoped
/// crates starts from u32-or-narrower.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

pub(super) fn check_cast_truncation(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != TargetKind::Lib
        || !CAST_TRUNCATION_CRATES.contains(&file.crate_name.as_str())
    {
        return;
    }
    let tokens = file.tokens();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || file.token_text(i) != "as" {
            continue;
        }
        if file.in_test_region(tok.line) {
            continue;
        }
        let Some(target) = tokens.get(i + 1).map(|_| file.token_text(i + 1)) else {
            continue;
        };
        if !NARROW_TARGETS.contains(&target) {
            continue;
        }
        if i == 0 {
            continue;
        }
        let prev = file.token_text(i - 1);
        // Literal casts (`0xFFu64 as u32` is weird but fits or is a
        // deliberate constant) are exempt; so are casts whose receiver
        // parens contain a right shift — `(h >> 32) as u32` is the
        // sanctioned explicit-truncation idiom.
        if tokens[i - 1].kind == TokenKind::Int || tokens[i - 1].kind == TokenKind::Float {
            continue;
        }
        if prev == ")" && paren_group_contains_shift(file, i - 1) {
            continue;
        }
        push(
            findings,
            file,
            RuleId::CastTruncation,
            tok.line,
            format!(
                "bare narrowing cast `as {target}` silently truncates wider values; \
                 use {target}::from for lossless widening, {target}::try_from for \
                 checked narrowing, or shift the high bits away visibly: (x >> k) as {target}"
            ),
        );
    }
}

/// Does the paren group ending at token `close` contain a `>>` (an
/// explicit truncation guard) at its own depth or deeper?
fn paren_group_contains_shift(file: &SourceFile, close: usize) -> bool {
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        match file.token_text(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            ">>" | ">>=" => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::{check_file, Finding, RuleId};
    use crate::source::{SourceFile, TargetKind};

    fn stats_fired(text: &str) -> Vec<RuleId> {
        let f = SourceFile::new("crates/stats/src/demo.rs", "stats", TargetKind::Lib, text);
        check_file(&f).into_iter().map(|f| f.rule).collect()
    }

    fn sim_findings(text: &str) -> Vec<Finding> {
        let f = SourceFile::new("crates/sim/src/demo.rs", "sim", TargetKind::Lib, text);
        check_file(&f)
    }

    #[test]
    fn exact_float_equality_fires() {
        assert_eq!(stats_fired("fn f(x: f64) -> bool { x == 0.0 }\n"), vec![RuleId::FloatSanity]);
        assert_eq!(stats_fired("fn f(x: f64) -> bool { 1.0 != x }\n"), vec![RuleId::FloatSanity]);
    }

    #[test]
    fn ordering_comparisons_and_int_equality_are_fine() {
        assert!(stats_fired("fn f(x: f64) -> bool { x <= 0.5 }\n").is_empty());
        assert!(stats_fired("fn f(x: f64) -> bool { x > 1.0 }\n").is_empty());
        assert!(stats_fired("fn f(n: u64) -> bool { n == 0 }\n").is_empty());
    }

    #[test]
    fn one_minus_ln_fires_and_ln_1p_does_not() {
        assert_eq!(stats_fired("fn f(p: f64) -> f64 { (1.0 - p).ln() }\n"), vec![RuleId::FloatSanity]);
        assert!(stats_fired("fn f(p: f64) -> f64 { (-p).ln_1p() }\n").is_empty());
        assert!(stats_fired("fn f(p: f64) -> f64 { (2.0 - p).ln() }\n").is_empty());
    }

    #[test]
    fn epsilon_equality_fires_but_named_tolerances_pass() {
        assert_eq!(
            stats_fired("fn f(a: f64, b: f64) -> bool { (a - b).abs() < f64::EPSILON }\n"),
            vec![RuleId::FloatSanity]
        );
        assert_eq!(
            stats_fired("fn f(a: f64, b: f64) -> bool { (a - b).abs() <= EPSILON }\n"),
            vec![RuleId::FloatSanity]
        );
        assert!(stats_fired("const EPS: f64 = 1e-12;\nfn f(a: f64, b: f64) -> bool { (a - b).abs() < EPS }\n").is_empty());
    }

    #[test]
    fn float_sanity_only_watches_its_crates() {
        let f = SourceFile::new(
            "crates/sim/src/demo.rs",
            "sim",
            TargetKind::Lib,
            "fn f(x: f64) -> bool { x == 0.0 }\n",
        );
        assert!(check_file(&f).is_empty());
    }

    #[test]
    fn bare_narrowing_casts_fire_in_sim_and_hash() {
        let found = sim_findings("fn f(w: usize) -> u32 { w as u32 }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, RuleId::CastTruncation);
        assert!(found[0].message.contains("u32::try_from"), "{}", found[0].message);
    }

    #[test]
    fn shift_guarded_and_literal_casts_are_exempt() {
        assert!(sim_findings("fn f(h: u64) -> u32 { (h >> 32) as u32 }\n").is_empty());
        assert!(sim_findings("fn f(h: u64) -> u16 { ((h >> 48) & 0xFFFF) as u16 }\n").is_empty());
        assert!(sim_findings("const W: u32 = 8192_u64 as u32;\n").is_empty());
    }

    #[test]
    fn widening_and_usize_casts_are_not_flagged() {
        assert!(sim_findings("fn f(x: u32) -> u64 { x as u64 }\n").is_empty());
        assert!(sim_findings("fn f(x: u32) -> usize { x as usize }\n").is_empty());
        assert!(sim_findings("fn f(x: u32) -> f64 { x as f64 }\n").is_empty());
    }

    #[test]
    fn cast_truncation_only_watches_its_crates() {
        let f = SourceFile::new(
            "crates/stats/src/demo.rs",
            "stats",
            TargetKind::Lib,
            "fn f(w: usize) -> u32 { w as u32 }\n",
        );
        assert!(check_file(&f).is_empty());
    }
}
