//! Rule `estimator-registry`: every estimator must stay wired up.
//!
//! This is the one *cross-file* rule. For each non-test
//! `impl CardinalityEstimator for X` found anywhere in the workspace, the
//! implementing type `X` must be
//!
//! 1. mentioned in the CLI registry ([`REGISTRY_PATH`], where
//!    `make_estimator` maps names to boxed estimators), and
//! 2. mentioned in at least one integration-test file (a `tests/`
//!    directory at the workspace root or under a crate), and
//! 3. mentioned in the fault-matrix suite ([`FAULT_MATRIX_PATH`]), so
//!    every estimator is exercised under every fault class the
//!    robustness ablation injects.
//!
//! Otherwise an estimator can silently rot out of the comparison figures:
//! it compiles, it is never constructed, and nobody notices the paper's
//! baseline table losing a row. Mentions are word-boundary identifier
//! matches over *masked* text, so a comment saying "unlike Zoe" does not
//! count as coverage.

use super::{Finding, RuleId};
use crate::source::SourceFile;

/// Workspace-relative path of the CLI estimator registry.
pub const REGISTRY_PATH: &str = "crates/cli/src/commands.rs";

/// Workspace-relative path of the fault-injection matrix suite every
/// estimator must appear in.
pub const FAULT_MATRIX_PATH: &str = "tests/fault_matrix.rs";

/// Trait whose implementors the rule tracks.
const ESTIMATOR_TRAITS: &[&str] = &["CardinalityEstimator"];

/// Run the registry check over the scanned rule files plus the
/// integration-test corpus (`tests/*.rs` at workspace root and per crate,
/// which the per-file rules deliberately do not scan).
pub fn check_workspace_registry(files: &[SourceFile], tests: &[SourceFile]) -> Vec<Finding> {
    let registry = files.iter().find(|f| f.rel_path == REGISTRY_PATH);
    let fault_matrix = tests.iter().find(|f| f.rel_path == FAULT_MATRIX_PATH);
    let mut findings = Vec::new();
    for file in files {
        for (trait_name, type_name, scope) in file.scopes().trait_impls() {
            if !ESTIMATOR_TRAITS.contains(&trait_name) {
                continue;
            }
            let mut missing = Vec::new();
            if !registry.is_some_and(|r| r.mentions_ident(type_name)) {
                missing.push(format!("the CLI registry ({REGISTRY_PATH})"));
            }
            if !tests.iter().any(|t| t.mentions_ident(type_name)) {
                missing.push("every tests/ file (no integration test constructs it)".to_string());
            }
            if !fault_matrix.is_some_and(|f| f.mentions_ident(type_name)) {
                missing.push(format!(
                    "the fault matrix ({FAULT_MATRIX_PATH}; new estimators must pass \
                     every fault class)"
                ));
            }
            if missing.is_empty() {
                continue;
            }
            findings.push(Finding {
                rule: RuleId::EstimatorRegistry,
                path: file.rel_path.clone(),
                line: scope.lines.start,
                message: format!(
                    "estimator `{type_name}` (impl {trait_name}) is missing from {}",
                    missing.join(" and from ")
                ),
                excerpt: file.line(scope.lines.start).trim().to_string(),
            });
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TargetKind;

    fn lib(path: &str, crate_name: &str, text: &str) -> SourceFile {
        SourceFile::new(path, crate_name, TargetKind::Lib, text)
    }

    const IMPL_ZOE: &str = "pub struct Zoe;\nimpl CardinalityEstimator for Zoe {\n    fn name(&self) -> &str { \"zoe\" }\n}\n";

    #[test]
    fn registered_and_tested_estimators_pass() {
        let files = vec![
            lib("crates/baselines/src/zoe.rs", "baselines", IMPL_ZOE),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(n: &str) -> Option<u8> {\n    match n { \"zoe\" => Some(Zoe::BIT), _ => None }\n}\n"),
        ];
        let tests = vec![
            lib("tests/end_to_end.rs", ".", "fn smoke() { let z = Zoe::default(); }\n"),
            lib(FAULT_MATRIX_PATH, ".", "fn matrix() { run(Zoe::default()); }\n"),
        ];
        assert!(check_workspace_registry(&files, &tests).is_empty());
    }

    #[test]
    fn unregistered_estimator_fires_at_the_impl_line() {
        let files = vec![
            lib("crates/baselines/src/zoe.rs", "baselines", IMPL_ZOE),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(_n: &str) -> Option<u8> { None }\n"),
        ];
        let tests = vec![
            lib("tests/end_to_end.rs", ".", "fn smoke() { let z = Zoe::default(); }\n"),
            lib(FAULT_MATRIX_PATH, ".", "fn matrix() { run(Zoe::default()); }\n"),
        ];
        let found = check_workspace_registry(&files, &tests);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, RuleId::EstimatorRegistry);
        assert_eq!(found[0].path, "crates/baselines/src/zoe.rs");
        assert_eq!(found[0].line, 2, "points at the impl header");
        assert!(found[0].message.contains("CLI registry"), "{}", found[0].message);
    }

    #[test]
    fn untested_estimator_fires_even_when_registered() {
        let files = vec![
            lib("crates/baselines/src/zoe.rs", "baselines", IMPL_ZOE),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(n: &str) -> u8 { Zoe::BIT }\n"),
        ];
        let found = check_workspace_registry(&files, &[]);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("tests/"), "{}", found[0].message);
    }

    #[test]
    fn estimator_missing_from_fault_matrix_fires() {
        let files = vec![
            lib("crates/baselines/src/zoe.rs", "baselines", IMPL_ZOE),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(n: &str) -> u8 { Zoe::BIT }\n"),
        ];
        // Mentioned in an ordinary integration test but absent from the
        // fault matrix: the robustness leg alone fires.
        let tests = vec![lib(
            "tests/end_to_end.rs",
            ".",
            "fn smoke() { let z = Zoe::default(); }\n",
        )];
        let found = check_workspace_registry(&files, &tests);
        assert_eq!(found.len(), 1);
        assert!(
            found[0].message.contains("fault matrix"),
            "{}",
            found[0].message
        );
        // A fault-matrix mention clears it.
        let tests = vec![
            lib("tests/end_to_end.rs", ".", "fn smoke() { let z = Zoe::default(); }\n"),
            lib(FAULT_MATRIX_PATH, ".", "fn matrix() { run(Zoe::default()); }\n"),
        ];
        assert!(check_workspace_registry(&files, &tests).is_empty());
        // ...but only as a word-boundary identifier, not inside a comment.
        let tests = vec![
            lib("tests/end_to_end.rs", ".", "fn smoke() { let z = Zoe::default(); }\n"),
            lib(FAULT_MATRIX_PATH, ".", "// Zoe is merely discussed\nfn matrix() {}\n"),
        ];
        assert_eq!(check_workspace_registry(&files, &tests).len(), 1);
    }

    #[test]
    fn comment_mentions_do_not_count_as_coverage() {
        let files = vec![
            lib("crates/baselines/src/zoe.rs", "baselines", IMPL_ZOE),
            lib(REGISTRY_PATH, "cli", "// Zoe is documented but not wired\nfn make_estimator(_n: &str) -> Option<u8> { None }\n"),
        ];
        let tests = vec![lib("tests/end_to_end.rs", ".", "// Zoe appears only here\nfn smoke() {}\n")];
        let found = check_workspace_registry(&files, &tests);
        assert_eq!(found.len(), 1);
        assert!(found[0].message.contains("and from"), "both legs missing: {}", found[0].message);
    }

    #[test]
    fn impls_inside_cfg_test_are_exempt() {
        let text = "#[cfg(test)]\nmod tests {\n    struct Fake;\n    impl CardinalityEstimator for Fake {\n        fn name(&self) -> &str { \"fake\" }\n    }\n}\n";
        let files = vec![
            lib("crates/sim/src/estimator.rs", "sim", text),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(_n: &str) -> Option<u8> { None }\n"),
        ];
        assert!(check_workspace_registry(&files, &[]).is_empty());
    }

    #[test]
    fn other_trait_impls_are_ignored() {
        let files = vec![
            lib("crates/sim/src/frame.rs", "sim", "impl Display for Frame {\n}\n"),
            lib(REGISTRY_PATH, "cli", "fn make_estimator(_n: &str) -> Option<u8> { None }\n"),
        ];
        assert!(check_workspace_registry(&files, &[]).is_empty());
    }
}
