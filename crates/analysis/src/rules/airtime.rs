//! Rule `airtime-conservation`: every slot-sensing collector reachable
//! from `RfidSystem` must also reach an air-time charging site.
//!
//! The paper's constant-time claim is operationalized as strict air-time
//! accounting: whenever the simulated reader senses slots (a bitslot or
//! ALOHA frame, a retry query), the `AirTimeLedger` must be charged the
//! corresponding bits. The bug class this rule targets is a new collector
//! that runs a frame but forgets to charge broadcast/retry/response bits —
//! its experiments silently report free air time and the protocol-cost
//! comparisons against ZOE/SRC/... stop meaning anything.
//!
//! Mechanically: the rule takes every fn reachable from any `RfidSystem`
//! method and, for each one that is *collector-shaped* (a `sense_*`/
//! `run_*`/`collect_*` fn whose name mentions `frame`), demands that its
//! interprocedural effect summary contains `charges-air-time` — i.e. some
//! `*_BITS` constant use or `AirTimeLedger` primitive is reachable from
//! the collector itself. Conservation is a *per-frame* invariant, which
//! is why the name must mention `frame`: per-slot channel primitives
//! (`Channel::sense_bitslot`, `sense_aloha`) model one slot of PHY and
//! are charged by the frame loop one layer up — flagging each of them
//! would demand double charging. Truth oracles (`bitslot_truth` and
//! friends) are not collector-shaped either: reading ground truth costs
//! no air time by definition.

use super::{push, Finding, RuleId};
use crate::callgraph::CallGraph;
use crate::effects::{Effect, Effects};
use crate::source::{SourceFile, TargetKind};

/// The reader type whose methods root the reachability walk.
const DISPATCH_TYPE: &str = "RfidSystem";

/// Run the rule.
pub fn check_airtime_conservation(
    files: &[SourceFile],
    graph: &CallGraph,
    effects: &Effects,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| d.self_type.as_deref() == Some(DISPATCH_TYPE) && !d.cfg_test)
        .map(|(i, _)| i)
        .collect();
    if seeds.is_empty() {
        return findings;
    }
    for f in graph.reachable_from(&seeds) {
        let def = &graph.fns[f];
        let file = &files[def.file];
        if file.kind != TargetKind::Lib || def.cfg_test || def.doc_hidden {
            continue;
        }
        if !collector_shaped(&def.name) {
            continue;
        }
        if effects.summary[f].contains(Effect::ChargesAirTime) {
            continue;
        }
        push(
            findings.as_mut(),
            file,
            RuleId::AirtimeConservation,
            def.line,
            format!(
                "collector `{}` is reachable from {DISPATCH_TYPE} and senses slots, but \
                 no air-time charging site (a `*_BITS` constant or an AirTimeLedger \
                 primitive) is reachable from it; charge the broadcast/retry/response \
                 bits the frame costs, or justify an allow",
                def.qualified_name(),
            ),
        );
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

/// Does the fn name look like a frame collector? `sense_*`/`run_*`/
/// `collect_*` fns that mention `frame` are; per-slot channel primitives
/// (`sense_bitslot`), truth oracles, and plain helpers are not.
fn collector_shaped(name: &str) -> bool {
    (name.starts_with("sense_") || name.starts_with("run_") || name.starts_with("collect_"))
        && name.contains("frame")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::effects::Effects;
    use crate::source::{SourceFile, TargetKind};

    fn run(system: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(
            "crates/sim/src/system.rs",
            "sim",
            TargetKind::Lib,
            system,
        )];
        let graph = CallGraph::build(&files);
        let effects = Effects::compute(&files, &graph);
        check_airtime_conservation(&files, &graph, &effects)
    }

    const CHARGED: &str = "\
pub const RETRY_QUERY_BITS: u64 = 32;\n\
pub struct AirTimeLedger { bits: u64 }\n\
impl AirTimeLedger { pub fn tag_responses(&mut self, n: u64) { self.bits = self.bits + n; } }\n\
pub struct RfidSystem { ledger: AirTimeLedger }\n\
impl RfidSystem {\n\
    pub fn estimate(&mut self, w: usize) -> usize { self.run_bitslot_frame(w) }\n\
    pub fn run_bitslot_frame(&mut self, w: usize) -> usize {\n\
        self.ledger.tag_responses(w as u64);\n\
        w\n\
    }\n\
}\n";

    #[test]
    fn charged_collectors_pass() {
        let found = run(CHARGED);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn a_collector_that_senses_without_charging_fires() {
        // The seeded bug class: `run_rogue_frame` walks slots but never
        // touches a `*_BITS` constant or the ledger.
        let rogue = "\
pub struct RfidSystem;\n\
impl RfidSystem {\n\
    pub fn estimate(&self, w: usize) -> usize { self.run_rogue_frame(w) }\n\
    pub fn run_rogue_frame(&self, w: usize) -> usize {\n\
        let mut hits = 0usize;\n\
        for s in 0..w { if s % 3 == 0 { hits = hits + 1; } }\n\
        hits\n\
    }\n\
}\n";
        let found = run(rogue);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::AirtimeConservation);
        assert!(
            found[0].message.contains("run_rogue_frame"),
            "{}",
            found[0].message
        );
        assert!(
            found[0].message.contains("no air-time charging site"),
            "{}",
            found[0].message
        );
    }

    #[test]
    fn charging_through_an_intermediate_fn_counts() {
        // The collector itself never names the ledger; a helper it calls
        // does. The interprocedural summary must carry the effect up.
        let indirect = "\
pub struct AirTimeLedger { bits: u64 }\n\
impl AirTimeLedger { pub fn tag_responses(&mut self, n: u64) { self.bits = self.bits + n; } }\n\
pub struct RfidSystem { ledger: AirTimeLedger }\n\
impl RfidSystem {\n\
    pub fn estimate(&mut self, w: usize) -> usize { self.run_bitslot_frame(w) }\n\
    pub fn run_bitslot_frame(&mut self, w: usize) -> usize { self.charge(w); w }\n\
    pub fn charge(&mut self, w: usize) { self.ledger.tag_responses(w as u64); }\n\
}\n";
        let found = run(indirect);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn truth_oracles_and_unreachable_collectors_are_out_of_scope() {
        // `bitslot_truth` is not collector-shaped; `run_island_frame` is
        // never reachable from RfidSystem.
        let src = "\
pub struct RfidSystem;\n\
impl RfidSystem {\n\
    pub fn truth(&self, w: usize) -> usize { self.bitslot_truth(w) }\n\
    pub fn bitslot_truth(&self, w: usize) -> usize { w }\n\
}\n\
pub fn run_island_frame(w: usize) -> usize { w }\n";
        let found = run(src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn per_slot_channel_primitives_are_not_frame_collectors() {
        // `sense_bitslot` senses ONE slot; the frame loop above it owns
        // the charge. Flagging the primitive would demand double charging.
        let src = "\
pub struct RfidSystem;\n\
impl RfidSystem {\n\
    pub fn estimate(&self, w: usize) -> usize { self.sense_bitslot(w) as usize }\n\
    pub fn sense_bitslot(&self, responders: usize) -> bool { responders > 0 }\n\
}\n";
        let found = run(src);
        assert!(found.is_empty(), "{found:?}");
    }
}
