//! Rule `panic-path`: panic surface nested inside library hot-path fns.
//!
//! Estimator and simulator functions run millions of times per experiment;
//! a panic deep inside a loop or closure aborts the whole Monte-Carlo run
//! far from the bad input. The rule distinguishes *where* a potentially
//! panicking construct sits, via the scope tree:
//!
//! - directly in the fn body (zero nested blocks) — a top-level
//!   precondition guard that fails fast at the call boundary; `assert!`
//!   and slice indexing are **allowed** there;
//! - nested inside any block (loop body, closure, match arm, `if`) —
//!   a hot-path panic risk; findings.
//!
//! Unconditional panic macros (`panic!`, `unreachable!`, `todo!`,
//! `unimplemented!`) and `unchecked_*` arithmetic/access fire at any
//! depth; `debug_assert!`-family macros never fire (compiled out of
//! release binaries, which is the sanctioned way to keep invariant checks
//! in hot paths).

use super::{push, Finding, RuleId, PANIC_PATH_CRATES};
use crate::lexer::TokenKind;
use crate::source::{SourceFile, TargetKind};

/// Macros that abort unconditionally when reached.
const HARD_PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Macros that abort when their condition fails — allowed as top-level
/// precondition guards, findings when nested.
const ASSERT_MACROS: &[&str] = &["assert", "assert_eq", "assert_ne"];

pub(super) fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if file.kind != TargetKind::Lib || !PANIC_PATH_CRATES.contains(&file.crate_name.as_str()) {
        return;
    }
    let tokens = file.tokens();
    // One finding per (line, construct) so `xs[i] + ys[i]` reports once.
    let mut reported: Vec<(usize, &'static str)> = Vec::new();
    let mut report = |findings: &mut Vec<Finding>, line: usize, tag: &'static str, msg: String| {
        if !reported.contains(&(line, tag)) {
            reported.push((line, tag));
            push(findings, file, RuleId::PanicPath, line, msg);
        }
    };
    for (i, tok) in tokens.iter().enumerate() {
        let line = tok.line;
        if file.in_test_region(line) {
            continue;
        }
        let text = file.token_text(i);
        match tok.kind {
            // --- macro invocations: Ident followed by `!` -------------
            TokenKind::Ident
                if tokens.get(i + 1).is_some_and(|n| {
                    n.kind == TokenKind::Punct && file.token_text(i + 1) == "!"
                }) =>
            {
                if HARD_PANIC_MACROS.contains(&text) {
                    report(
                        findings,
                        line,
                        "hard-panic",
                        format!(
                            "{text}! in a library hot path aborts the whole run; \
                             return an error or restructure so the branch is impossible"
                        ),
                    );
                } else if ASSERT_MACROS.contains(&text) {
                    // Allowed as a top-level precondition guard; a finding
                    // only when nested inside a block of the fn body.
                    if let Some((_, blocks)) = file.scopes().enclosing_fn(tok.start) {
                        if blocks > 0 {
                            let at = file
                                .scopes()
                                .describe(tok.start)
                                .unwrap_or_else(|| "a fn".to_string());
                            report(
                                findings,
                                line,
                                "assert",
                                format!(
                                    "{text}! nested {blocks} block(s) deep in {at}; hoist it \
                                     to a top-of-fn precondition guard or use debug_{text}! \
                                     for an internal invariant"
                                ),
                            );
                        }
                    }
                }
            }
            // --- unchecked arithmetic / access ------------------------
            TokenKind::Ident
                if text.starts_with("unchecked_") || text.starts_with("get_unchecked") =>
            {
                report(
                    findings,
                    line,
                    "unchecked",
                    format!(
                        "{text} bypasses the checks the determinism contract relies on; \
                         use checked/wrapping ops or .get() and justify any exception"
                    ),
                );
            }
            // --- slice indexing ---------------------------------------
            TokenKind::Punct if text == "[" => {
                // Indexing only when the `[` follows an expression tail:
                // an identifier, an int literal, `)`, or `]`. This skips
                // `vec![`/`matches!(` (previous token `!`), attributes
                // (`#`), array types (`&`, `:`, `<`, `->`, `=`, `(`), and
                // array literals.
                let is_index = i > 0 && {
                    let prev = &tokens[i - 1];
                    let ptext = file.token_text(i - 1);
                    matches!(prev.kind, TokenKind::Ident | TokenKind::Int)
                        && ptext != "as"
                        || (prev.kind == TokenKind::Punct && (ptext == ")" || ptext == "]"))
                };
                if !is_index {
                    continue;
                }
                if let Some((_, blocks)) = file.scopes().enclosing_fn(tok.start) {
                    if blocks > 0 {
                        let at = file
                            .scopes()
                            .describe(tok.start)
                            .unwrap_or_else(|| "a fn".to_string());
                        report(
                            findings,
                            line,
                            "index",
                            format!(
                                "slice indexing nested {blocks} block(s) deep in {at} \
                                 panics on out-of-range; use .get()/iterators or hoist a \
                                 bounds guard to fn entry"
                            ),
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::rules_fired;
    use super::super::{check_file, RuleId};
    use crate::source::{SourceFile, TargetKind};

    #[test]
    fn top_level_precondition_guards_are_allowed() {
        assert!(rules_fired("fn f(w: usize) {\n    assert!(w > 0);\n    assert!(w.is_power_of_two());\n}\n").is_empty());
        assert!(rules_fired("fn first(xs: &[u64]) -> u64 {\n    xs[0]\n}\n").is_empty());
    }

    #[test]
    fn nested_asserts_fire() {
        let text = "fn f(xs: &[u64]) {\n    for x in xs {\n        assert!(*x > 0);\n    }\n}\n";
        assert_eq!(rules_fired(text), vec![RuleId::PanicPath]);
    }

    #[test]
    fn debug_asserts_never_fire() {
        let text = "fn f(xs: &[u64]) {\n    for x in xs {\n        debug_assert!(*x > 0);\n        debug_assert_eq!(*x, *x);\n    }\n}\n";
        assert!(rules_fired(text).is_empty());
    }

    #[test]
    fn hard_panic_macros_fire_at_any_depth() {
        assert_eq!(rules_fired("fn f() {\n    panic!(\"boom\");\n}\n"), vec![RuleId::PanicPath]);
        let nested = "fn f(x: u32) -> u32 {\n    match x {\n        0 => 1,\n        _ => unreachable!(),\n    }\n}\n";
        assert_eq!(rules_fired(nested), vec![RuleId::PanicPath]);
    }

    #[test]
    fn nested_indexing_fires_once_per_line() {
        let text = "fn dot(a: &[f64], b: &[f64]) -> f64 {\n    let mut s = 0.0;\n    for i in 0..a.len() {\n        s += a[i] * b[i];\n    }\n    s\n}\n";
        let fired = rules_fired(text);
        assert_eq!(fired, vec![RuleId::PanicPath], "{fired:?}");
    }

    #[test]
    fn macro_brackets_attributes_and_array_types_are_not_indexing() {
        assert!(rules_fired("fn f() -> Vec<u32> {\n    if true { vec![1, 2, 3] } else { vec![] }\n}\n").is_empty());
        assert!(rules_fired("fn f(x: &[u8; 4]) -> u64 {\n    let a = [0u8; 8];\n    u64::from(a[0])\n}\n").is_empty());
    }

    #[test]
    fn unchecked_ops_fire_anywhere() {
        let text = "fn f(x: u32, y: u32) -> u32 {\n    unsafe { x.unchecked_add(y) }\n}\n";
        assert_eq!(rules_fired(text), vec![RuleId::PanicPath]);
        let text = "fn f(xs: &[u64]) -> u64 {\n    unsafe { *xs.get_unchecked(0) }\n}\n";
        assert_eq!(rules_fired(text), vec![RuleId::PanicPath]);
    }

    #[test]
    fn out_of_scope_crates_and_tests_are_exempt() {
        let f = SourceFile::new(
            "crates/experiments/src/lib.rs",
            "experiments",
            TargetKind::Lib,
            "fn f(xs: &[u64]) {\n    for x in xs {\n        assert!(*x > 0);\n    }\n}\n",
        );
        assert!(check_file(&f).is_empty(), "experiments is exempt from panic-path");
        let text = "#[cfg(test)]\nmod tests {\n    fn t(xs: &[u64]) {\n        for i in 0..xs.len() {\n            assert_eq!(xs[i], xs[i]);\n        }\n    }\n}\n";
        assert!(rules_fired(text).is_empty());
    }

    #[test]
    fn const_asserts_outside_fns_are_skipped() {
        assert!(rules_fired("const _: () = assert!(std::mem::size_of::<usize>() >= 8);\n").is_empty());
    }
}
