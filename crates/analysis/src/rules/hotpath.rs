//! Rules `hotpath-panic-free` and `hotpath-alloc-free`: the frame-fill
//! hot loops must not panic or allocate.
//!
//! The dispatched fill kernels (`response_fill_dispatched`,
//! `response_counts_dispatched`, `ZoeSlotPlan::fill_chunk`) run once per
//! tag per frame — hundreds of millions of iterations in a full
//! Monte-Carlo sweep. A panic there aborts the whole run far from the bad
//! input (the panic-path rule's argument, applied transitively), and a
//! per-slot allocation turns a branch-free bit kernel into a malloc
//! benchmark (the PR 7 ZOE regression class).
//!
//! Both rules walk the same ground: every fn reachable from a hot root
//! through the call graph, restricted to the kernel crates
//! ([`HOTPATH_CRATES`]) — the `.method(` over-approximation drags in
//! same-named methods from glue crates (`cli`, `experiments`) that no hot
//! loop ever actually executes, and findings there would be pure noise.
//! For each reachable fn, its *direct* effect seed sites are judged:
//!
//! - `panics` seeds fire `hotpath-panic-free`;
//! - `allocates` seeds fire `hotpath-alloc-free`;
//! - sites flagged as guards (top-level `assert!` precondition checks,
//!   pre-loop buffer allocations at block depth 0) are exempt — failing
//!   fast at the call boundary and hoisting allocation out of the loop
//!   are the two sanctioned patterns;
//! - `debug_assert!` never seeds (compiled out of release binaries).
//!
//! Golden-pinned sites that must keep their exact shape carry inline
//! `analysis:allow(hotpath-…)` justifications, same as every other rule.

use super::{push, Finding, RuleId};
use crate::callgraph::CallGraph;
use crate::effects::{Effect, Effects};
use crate::source::{SourceFile, TargetKind};

/// The crates whose fns the hot-path rules judge: where the fill kernels
/// and their helpers live. Reachable fns in other crates are artifacts of
/// the `.method(` over-approximation, not hot code.
pub const HOTPATH_CRATES: &[&str] = &["hash", "sim", "core", "baselines"];

/// Free-fn hot roots: the frame-fill dispatchers.
const HOT_ROOT_FNS: &[&str] = &["response_fill_dispatched", "response_counts_dispatched"];

/// Method hot roots: `(type, method)` kernels dispatched per frame.
const HOT_ROOT_METHODS: &[(&str, &str)] = &[("ZoeSlotPlan", "fill_chunk")];

/// Run both hot-path rules over one reachability walk.
pub fn check_hotpath(
    files: &[SourceFile],
    graph: &CallGraph,
    effects: &Effects,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| {
            !d.cfg_test
                && (HOT_ROOT_FNS.contains(&d.name.as_str())
                    || HOT_ROOT_METHODS.iter().any(|(t, m)| {
                        d.self_type.as_deref() == Some(*t) && d.name == *m
                    }))
        })
        .map(|(i, _)| i)
        .collect();
    if seeds.is_empty() {
        return findings;
    }
    for f in graph.reachable_from(&seeds) {
        let def = &graph.fns[f];
        let file = &files[def.file];
        if file.kind != TargetKind::Lib
            || def.cfg_test
            || def.doc_hidden
            || !HOTPATH_CRATES.contains(&def.crate_name.as_str())
        {
            continue;
        }
        for site in &effects.seeds[f] {
            if site.guard {
                continue;
            }
            match site.effect {
                Effect::Panics => push(
                    findings.as_mut(),
                    file,
                    RuleId::HotpathPanicFree,
                    site.line,
                    format!(
                        "{} in `{}` is reachable from the frame-fill hot loop; hot \
                         kernels must stay panic-free — use .get()/iterators, \
                         debug_assert!, or hoist the check to a top-of-fn guard",
                        site.what,
                        def.qualified_name(),
                    ),
                ),
                Effect::Allocates => push(
                    findings.as_mut(),
                    file,
                    RuleId::HotpathAllocFree,
                    site.line,
                    format!(
                        "{} in `{}` is reachable from the frame-fill hot loop; hot \
                         kernels must not allocate per slot — hoist the buffer to a \
                         pre-loop (top-of-fn) allocation or reuse a caller-provided one",
                        site.what,
                        def.qualified_name(),
                    ),
                ),
                _ => {}
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::effects::Effects;
    use crate::source::{SourceFile, TargetKind};

    fn run(lib: &str) -> Vec<Finding> {
        let files = vec![SourceFile::new(
            "crates/sim/src/frame.rs",
            "sim",
            TargetKind::Lib,
            lib,
        )];
        let graph = CallGraph::build(&files);
        let effects = Effects::compute(&files, &graph);
        check_hotpath(&files, &graph, &effects)
    }

    #[test]
    fn a_clean_kernel_passes() {
        let found = run(
            "pub fn response_fill_dispatched(tags: &[u64], out: &mut [u64]) {\n\
                 for (i, t) in tags.iter().enumerate() {\n\
                     if let Some(slot) = out.get_mut(i % out.len().max(1)) { *slot ^= t; }\n\
                 }\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn a_nested_unwrap_reachable_from_the_dispatcher_fires() {
        let found = run(
            "pub fn response_fill_dispatched(tags: &[u64]) { for t in tags { slot_of(*t); } }\n\
             pub fn slot_of(t: u64) -> u64 {\n\
                 let m: Option<u64> = Some(t);\n\
                 for _ in 0..1 { return m.unwrap(); }\n\
                 0\n\
             }\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::HotpathPanicFree);
        assert!(found[0].message.contains("slot_of"), "{}", found[0].message);
    }

    #[test]
    fn a_nested_allocation_fires_but_a_preloop_one_does_not() {
        let nested = run(
            "pub fn response_counts_dispatched(tags: &[u64]) -> usize {\n\
                 let mut n = 0;\n\
                 for t in tags { let v: Vec<u64> = vec![*t]; n += v.len(); }\n\
                 n\n\
             }\n",
        );
        assert_eq!(nested.len(), 1, "{nested:?}");
        assert_eq!(nested[0].rule, RuleId::HotpathAllocFree);

        let preloop = run(
            "pub fn response_counts_dispatched(tags: &[u64]) -> usize {\n\
                 let mut out: Vec<u64> = Vec::with_capacity(tags.len());\n\
                 for t in tags { out.push(*t); }\n\
                 out.len()\n\
             }\n",
        );
        assert!(preloop.is_empty(), "pre-loop allocation is a guard: {preloop:?}");
    }

    #[test]
    fn zoe_fill_chunk_is_a_hot_root() {
        let found = run(
            "pub struct ZoeSlotPlan;\n\
             impl ZoeSlotPlan {\n\
                 pub fn fill_chunk(&self, tags: &[u64]) -> u64 {\n\
                     let mut acc = 0;\n\
                     for t in tags { acc ^= tags[(*t as usize) % tags.len()]; }\n\
                     acc\n\
                 }\n\
             }\n",
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].rule, RuleId::HotpathPanicFree);
        assert!(found[0].message.contains("slice indexing"), "{}", found[0].message);
    }

    #[test]
    fn top_level_guards_and_debug_asserts_are_exempt() {
        let found = run(
            "pub fn response_fill_dispatched(tags: &[u64], w: usize) -> u64 {\n\
                 assert!(w.is_power_of_two());\n\
                 let mut acc = 0;\n\
                 for t in tags { debug_assert!(*t > 0); acc ^= t; }\n\
                 acc\n\
             }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn fns_outside_the_kernel_crates_are_not_judged() {
        let files = vec![
            SourceFile::new(
                "crates/sim/src/frame.rs",
                "sim",
                TargetKind::Lib,
                "pub fn response_fill_dispatched(r: &Renderer) { r.draw(); }\n",
            ),
            SourceFile::new(
                "crates/experiments/src/lib.rs",
                "experiments",
                TargetKind::Lib,
                "pub struct Renderer;\n\
                 impl Renderer { pub fn draw(&self) -> String { let mut s = String::new(); \
                 for i in 0..3 { s = format!(\"{s}{i}\"); } s } }\n",
            ),
        ];
        let graph = CallGraph::build(&files);
        let effects = Effects::compute(&files, &graph);
        let found = check_hotpath(&files, &graph, &effects);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn no_hot_roots_means_no_findings() {
        let found = run("pub fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n");
        assert!(found.is_empty(), "{found:?}");
    }
}
