//! The lint rules and the findings they produce.
//!
//! Each rule protects one leg of the workspace's correctness contract (see
//! `ANALYSIS.md` at the workspace root): bitwise-deterministic parallel
//! experiments, panic-free library hot paths, and numerically faithful
//! float code. Rules operate on a prepared [`SourceFile`]: masked text and
//! a token stream for pattern matching, a scope tree for "where am I"
//! questions, original text for excerpts, and `#[cfg(test)]` regions
//! excluded throughout — tests may use wall clocks, `unwrap`, exact float
//! comparison, and ad-hoc seeds freely.

mod airtime;
mod determinism;
mod fold_order;
mod hotpath;
mod kernel_parity;
mod numeric;
mod panic_path;
mod provenance;
mod registry;
mod snapshot_surface;

pub use airtime::check_airtime_conservation;
pub use fold_order::check_fold_order;
pub use hotpath::check_hotpath;
pub use kernel_parity::check_kernel_parity;
pub use provenance::check_seed_provenance;
pub use registry::{check_workspace_registry, REGISTRY_PATH};
pub use snapshot_surface::check_snapshot_surface;

use crate::source::{SourceFile, TargetKind};
use std::fmt;

/// The crates whose **library targets** carry the determinism contract
/// (rules [`RuleId::Nondeterminism`], [`RuleId::FloatReduction`], and
/// [`RuleId::SeedHygiene`]). `cli` and `bench` are deliberately absent:
/// the CLI is user-facing glue and the bench harness measures wall-clock
/// time by design. `"."` is the workspace-root facade crate.
pub const DETERMINISM_CRATES: &[&str] = &[
    ".",
    "stats",
    "hash",
    "sim",
    "workloads",
    "core",
    "baselines",
    "experiments",
];

/// The crates whose library targets carry the panic-freedom contract
/// ([`RuleId::PanicPath`]): the estimator/simulator hot paths that run
/// inside million-trial Monte-Carlo loops. `experiments` is exempt — its
/// lib modules render figure tables from already-aggregated data, where a
/// loud panic beats a silently wrong CSV (its engine's preconditions are
/// top-level guards, which the rule permits anyway).
pub const PANIC_PATH_CRATES: &[&str] =
    &[".", "stats", "hash", "sim", "workloads", "core", "baselines"];

/// The crates [`RuleId::FloatSanity`] watches: where the paper's
/// estimator math and its statistical validation live.
pub const FLOAT_SANITY_CRATES: &[&str] = &["stats", "baselines"];

/// The crates [`RuleId::CastTruncation`] watches: where frame/slot
/// indices and hash words are narrowed.
pub const CAST_TRUNCATION_CRATES: &[&str] = &["sim", "hash"];

/// Identifies one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// Wall-clock, OS entropy, or hash-order dependence in library code.
    Nondeterminism,
    /// `unwrap()` / `expect(` outside tests, benches, and binaries.
    Unwrap,
    /// Floating-point reduction inside a parallel fold closure.
    FloatReduction,
    /// PRNG seeded from a literal or ad-hoc arithmetic instead of
    /// `stream_seed`.
    SeedHygiene,
    /// Panic surface (slice indexing, `panic!`/`assert!` families,
    /// `unchecked_*` arithmetic) nested inside library hot paths.
    PanicPath,
    /// Fragile float idioms: exact `==`/`!=` against float literals,
    /// `(1.0 - x).ln()` instead of `ln_1p`, machine-epsilon equality.
    FloatSanity,
    /// Narrowing `as` casts on frame/slot-width expressions.
    CastTruncation,
    /// An `impl CardinalityEstimator` type missing from the CLI registry
    /// or from every integration test.
    EstimatorRegistry,
    /// A PRNG construction whose seed argument is transitively derived
    /// from a hard-coded literal or an external (wall-clock/entropy)
    /// source, traced through the call graph.
    SeedProvenance,
    /// A batched kernel reachable from `RfidSystem` dispatch missing its
    /// scalar reference sibling or an equivalence proptest.
    KernelParity,
    /// A call inside a parallel fold closure that transitively performs
    /// order-sensitive float accumulation.
    FoldOrder,
    /// A slot-sensing collector reachable from `RfidSystem` whose effect
    /// summary never reaches a `charges-air-time` site.
    AirtimeConservation,
    /// A `panics` effect seed reachable from the frame-fill hot loop.
    HotpathPanicFree,
    /// An `allocates` effect seed reachable from the frame-fill hot loop.
    HotpathAllocFree,
    /// A stateful `impl CardinalityEstimator` with no mergeable snapshot
    /// surface (no `Snapshot` impl, no inherent sketch exporter).
    SnapshotSurface,
    /// A suppression (in `analysis.toml` or inline) that suppressed
    /// nothing, or a malformed inline suppression.
    StaleAllow,
}

/// Every rule, in the canonical reporting order.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::Nondeterminism,
    RuleId::Unwrap,
    RuleId::FloatReduction,
    RuleId::SeedHygiene,
    RuleId::PanicPath,
    RuleId::FloatSanity,
    RuleId::CastTruncation,
    RuleId::EstimatorRegistry,
    RuleId::SeedProvenance,
    RuleId::KernelParity,
    RuleId::FoldOrder,
    RuleId::AirtimeConservation,
    RuleId::HotpathPanicFree,
    RuleId::HotpathAllocFree,
    RuleId::SnapshotSurface,
    RuleId::StaleAllow,
];

impl RuleId {
    /// The stable name used in reports, `analysis.toml`, and inline
    /// `// analysis:allow(…)` comments.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => "nondeterminism",
            RuleId::Unwrap => "unwrap",
            RuleId::FloatReduction => "float-reduction",
            RuleId::SeedHygiene => "seed-hygiene",
            RuleId::PanicPath => "panic-path",
            RuleId::FloatSanity => "float-sanity",
            RuleId::CastTruncation => "cast-truncation",
            RuleId::EstimatorRegistry => "estimator-registry",
            RuleId::SeedProvenance => "seed-provenance",
            RuleId::KernelParity => "kernel-parity",
            RuleId::FoldOrder => "fold-order",
            RuleId::AirtimeConservation => "airtime-conservation",
            RuleId::HotpathPanicFree => "hotpath-panic-free",
            RuleId::HotpathAllocFree => "hotpath-alloc-free",
            RuleId::SnapshotSurface => "snapshot-surface",
            RuleId::StaleAllow => "stale-allow",
        }
    }

    /// Parse a rule name from `analysis.toml` or an inline suppression.
    /// [`RuleId::StaleAllow`] is not suppressible, so it is not accepted
    /// here.
    pub fn from_name(name: &str) -> Option<Self> {
        ALL_RULES
            .iter()
            .copied()
            .filter(|r| *r != RuleId::StaleAllow)
            .find(|r| r.name() == name)
    }

    /// One-line summary for `--list-rules` and the SARIF rule table.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => {
                "wall-clock, OS entropy, or hash-order dependence in determinism-scoped library crates"
            }
            RuleId::Unwrap => ".unwrap() / .expect( outside tests, benches, and binaries",
            RuleId::FloatReduction => {
                "float accumulation inside par_fold / thread::scope closures (chunking-dependent results)"
            }
            RuleId::SeedHygiene => {
                "PRNG seeded from a literal or ad-hoc arithmetic instead of rfid_hash::stream_seed"
            }
            RuleId::PanicPath => {
                "slice indexing, assert!/panic! families, or unchecked_* arithmetic nested inside library hot-path fns"
            }
            RuleId::FloatSanity => {
                "exact float equality, (1.0 - x).ln() instead of ln_1p, or machine-epsilon comparison in estimator math"
            }
            RuleId::CastTruncation => {
                "narrowing `as u8/u16/u32` cast on a frame/slot-width expression without a visible truncation guard"
            }
            RuleId::EstimatorRegistry => {
                "an `impl CardinalityEstimator` type absent from the CLI registry, from every tests/ file, or from the fault matrix"
            }
            RuleId::SeedProvenance => {
                "PRNG construction whose seed argument transitively derives from a hard-coded literal or wall-clock/entropy source (interprocedural)"
            }
            RuleId::KernelParity => {
                "a batched kernel reachable from RfidSystem dispatch without a scalar reference sibling or an equivalence proptest under crates/*/tests/"
            }
            RuleId::FoldOrder => {
                "a call inside a par_fold / thread::scope closure that transitively performs order-sensitive float accumulation"
            }
            RuleId::AirtimeConservation => {
                "a slot-sensing collector reachable from RfidSystem whose interprocedural effect summary never reaches a charges-air-time site"
            }
            RuleId::HotpathPanicFree => {
                "a panics effect seed (unwrap, nested assert/index, panic! family) reachable from the frame-fill dispatch hot loop"
            }
            RuleId::HotpathAllocFree => {
                "an allocates effect seed (container constructor, vec!/format!, collecting adapter) reachable from the frame-fill dispatch hot loop"
            }
            RuleId::SnapshotSurface => {
                "a stateful impl CardinalityEstimator with no Snapshot impl and no inherent sketch/snapshot exporter (cannot join multi-reader merging)"
            }
            RuleId::StaleAllow => {
                "a suppression (analysis.toml or inline) that suppresses nothing, or a malformed inline allow"
            }
        }
    }

    /// Long-form rationale and the canonical compliant pattern, for
    /// `--explain`.
    pub fn explanation(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => {
                "Library crates promise bitwise-identical results at any worker count.\n\
                 Wall clocks (Instant::now, SystemTime), OS entropy (thread_rng,\n\
                 rand::random), and RandomState-ordered collections (HashMap/HashSet)\n\
                 all leak scheduling or process state into results.\n\n\
                 Compliant pattern:\n\
                     // time: derive from the simulation clock / AirTime ledger\n\
                     // rng:  SplitMix64::new(rfid_hash::stream_seed(seed, stream))\n\
                     // maps: BTreeMap / BTreeSet, or sort before iterating"
            }
            RuleId::Unwrap => {
                "A panic in a library crate tears down a whole Monte-Carlo run and\n\
                 poisons the worker pool. Binaries and tests may unwrap freely.\n\n\
                 Compliant pattern:\n\
                     let v = map.get(&k).ok_or(Error::Missing(k))?;\n\
                     // or restructure so the failure is impossible, and say why"
            }
            RuleId::FloatReduction => {
                "f64 addition is not associative, so `+=`/`sum()` over floats inside\n\
                 par_fold-family closures makes results depend on chunk boundaries.\n\n\
                 Compliant pattern (PR 2):\n\
                     collect per-item records in the fold, then do one sequential\n\
                     Welford/percentile pass over the merged, trial-ordered list"
            }
            RuleId::SeedHygiene => {
                "Affine seed schedules (seed + i, seed ^ CONST) correlate\n\
                 \"independent\" streams — the PR 2 bug class. Literal seeds hide\n\
                 replay coupling.\n\n\
                 Compliant pattern:\n\
                     SplitMix64::new(rfid_hash::stream_seed(master, stream_index))"
            }
            RuleId::PanicPath => {
                "Estimator and simulator fns run millions of times per experiment; a\n\
                 panic deep in a loop or closure aborts the whole run far from the\n\
                 bad input. Top-level precondition guards (first statements of a fn\n\
                 body) are allowed — they fail fast at the call boundary. Nested\n\
                 slice indexing, assert!/assert_eq!/assert_ne!, panic!/unreachable!/\n\
                 todo!/unimplemented!, and .unchecked_* arithmetic are findings;\n\
                 debug_assert! is always exempt.\n\n\
                 Compliant pattern:\n\
                     xs.get(i) / iterators instead of xs[i] in loops;\n\
                     debug_assert! for internal invariants;\n\
                     hoist input validation to top-of-fn guards"
            }
            RuleId::FloatSanity => {
                "BFCE's (epsilon, delta) guarantee rests on float code that stays\n\
                 faithful near boundaries. `x == 0.0` on computed values is\n\
                 false-negative-prone; `(1.0 - x).ln()` loses all precision as\n\
                 x -> 0 (catastrophic cancellation); `.abs() < f64::EPSILON` is an\n\
                 equality test in disguise (fails for any value above ~2).\n\n\
                 Compliant pattern:\n\
                     (-x).ln_1p()            // instead of (1.0 - x).ln()\n\
                     a.total_cmp(&b)         // for ordering/equality decisions\n\
                     (a - b).abs() <= tol * a.abs().max(b.abs())  // relative tol\n\
                 Exact sentinel checks against literals a caller passed verbatim\n\
                 are fine — suppress with a justification saying so."
            }
            RuleId::CastTruncation => {
                "Frame and slot widths flow through u64 hash words; a bare\n\
                 `as u32`/`as u16`/`as u8` silently truncates if a wider value ever\n\
                 reaches it (the paper's frames already use w = 8192 slots; scaled\n\
                 deployments go far higher). Casts whose receiver visibly shifts\n\
                 away the high bits (`(x >> 32) as u32`) are exempt.\n\n\
                 Compliant pattern:\n\
                     u32::from(narrower)      // lossless widening\n\
                     u32::try_from(x)?        // checked narrowing\n\
                     (x >> 32) as u32         // explicit truncation guard"
            }
            RuleId::EstimatorRegistry => {
                "Every `impl CardinalityEstimator for X` must be reachable from the\n\
                 CLI (crates/cli/src/commands.rs, make_estimator), exercised by\n\
                 at least one integration test under a tests/ directory, and run\n\
                 through the fault matrix (tests/fault_matrix.rs) — otherwise an\n\
                 estimator can silently rot out of the comparison figures or ship\n\
                 without a robustness contract.\n\n\
                 Compliant pattern:\n\
                     add a `\"name\" => Some(Box::new(X::default()))` registry arm,\n\
                     mention X in a tests/ file (smoke-construct it at least),\n\
                     and add X to estimator_family() in tests/fault_matrix.rs"
            }
            RuleId::SeedProvenance => {
                "seed-hygiene reads the literal text of a seed argument; this rule\n\
                 asks the dataflow pass where the value *came from*. Provenance is\n\
                 tracked through let-bindings, reassignments, and call-graph edges\n\
                 with a four-point lattice (SeedDerived, Literal, External,\n\
                 Unknown). A PRNG constructor whose seed provably descends from a\n\
                 hard-coded literal or a wall-clock/entropy call — even through\n\
                 several intermediate fns — is flagged at the construction site.\n\
                 Unknown provenance is never flagged; bare literal arguments stay\n\
                 seed-hygiene findings.\n\n\
                 Compliant pattern:\n\
                     fn build(seed: u64) -> SplitMix64 {\n\
                         SplitMix64::new(rfid_hash::stream_seed(seed, STREAM))\n\
                     }\n\
                     // callers thread `seed` down from the CLI / experiment config"
            }
            RuleId::KernelParity => {
                "Every batched kernel (fill_chunk override, *_batch/*_batched\n\
                 sibling, fill_* buffer fill) reachable from RfidSystem dispatch\n\
                 must keep a scalar reference sibling and appear in an equivalence\n\
                 proptest under some crate's tests/ directory — the proptests are\n\
                 the only thing holding batched and scalar paths bitwise-equal.\n\
                 Trait-default methods are exempt (they *are* the scalar\n\
                 reference); #[cfg(test)] and #[doc(hidden)] kernels are skipped\n\
                 (the latter is the opt-out for deprecated kernels kept only for\n\
                 benchmark comparisons).\n\n\
                 Compliant pattern:\n\
                     impl ResponsePlan for X { fn responses(..) {..}  // scalar\n\
                                               fn fill_chunk(..) {..} }\n\
                     // crates/<crate>/tests/proptests.rs: proptest asserting\n\
                     // X's batched and scalar fills produce identical frames"
            }
            RuleId::FoldOrder => {
                "float-reduction catches `+=` over floats written directly inside\n\
                 a parallel fold closure; this rule catches the same accumulation\n\
                 hidden behind a call. Any fn from which a float reducer (float in\n\
                 the signature, `+=`/`.sum()` in the body) is reachable through\n\
                 the call graph may not be called from a par_fold /\n\
                 par_fold_with_threads / thread::scope argument region.\n\n\
                 Compliant pattern:\n\
                     collect per-item records inside the fold; run the float\n\
                     reduction sequentially over the merged, trial-ordered list;\n\
                     or justify order-insensitivity with an inline\n\
                     // analysis:allow(fold-order): ..."
            }
            RuleId::AirtimeConservation => {
                "The paper's constant-time claim is operationalized as strict\n\
                 air-time accounting: whenever a collector senses slots, the\n\
                 AirTimeLedger must be charged the corresponding bits. This rule\n\
                 takes every fn reachable from RfidSystem dispatch and, for each\n\
                 collector-shaped one (sense_*, or run_*/collect_* mentioning\n\
                 `frame`), demands that its interprocedural effect summary\n\
                 contains charges-air-time — some *_BITS constant use or\n\
                 AirTimeLedger primitive reachable from the collector itself.\n\
                 Otherwise a new collector silently reports free air time and the\n\
                 protocol-cost comparisons stop meaning anything.\n\n\
                 Compliant pattern:\n\
                     self.ledger.reader_broadcast(QUERY_BITS);\n\
                     let frame = …sense the slots…;\n\
                     self.ledger.tag_responses(frame.responses() * SLOT_BITS);"
            }
            RuleId::HotpathPanicFree => {
                "The dispatched fill kernels run once per tag per frame —\n\
                 hundreds of millions of iterations in a full sweep. Any panics\n\
                 effect seed (unwrap/expect, panic! family, nested assert! or\n\
                 slice indexing, unchecked_*) in a fn reachable from\n\
                 response_fill_dispatched / response_counts_dispatched /\n\
                 ZoeSlotPlan::fill_chunk is flagged at the seed site. Top-level\n\
                 precondition guards (assert! at block depth 0) and\n\
                 debug_assert! are exempt — fail fast at the call boundary, keep\n\
                 the loop body total.\n\n\
                 Compliant pattern:\n\
                     xs.get(i) / iterators in the loop body;\n\
                     assert!(w.is_power_of_two()) as the first statement;\n\
                     debug_assert! for internal invariants"
            }
            RuleId::HotpathAllocFree => {
                "A per-slot allocation turns a branch-free bit kernel into a\n\
                 malloc benchmark. Any allocates effect seed (Vec::/Box::/String::\n\
                 constructors, vec!/format!, .collect()/.to_vec()) in a fn\n\
                 reachable from the frame-fill dispatchers is flagged at the seed\n\
                 site, except pre-loop setup at block depth 0 — allocating the\n\
                 output buffer once before the loop is the sanctioned pattern.\n\n\
                 Compliant pattern:\n\
                     let mut out = vec![0u64; words];   // top of fn, once\n\
                     for chunk in … { fill into &mut out }  // no allocation here"
            }
            RuleId::SnapshotSurface => {
                "Multi-reader continuous estimation (ROADMAP item 2) needs\n\
                 estimator state that can leave the process and merge. Every\n\
                 stateful (non-unit-struct) impl CardinalityEstimator must\n\
                 either impl Snapshot, expose an inherent sketch/snapshot/\n\
                 to_snapshot exporter returning a mergeable sketch (as\n\
                 HllPp::sketch does), or record why the protocol cannot keep\n\
                 mergeable state in an analysis:allow(snapshot-surface)\n\
                 justification — turning 'only three sketch kinds serialize'\n\
                 into an enumerable burndown.\n\n\
                 Compliant pattern:\n\
                     pub fn sketch(&self, system: &mut RfidSystem, seed: u32)\n\
                         -> RegisterSketch { … }   // RegisterSketch: Snapshot"
            }
            RuleId::StaleAllow => {
                "Suppressions are debt: each one must keep suppressing a real\n\
                 finding, or it gets flagged so the file shrinks as the tree gets\n\
                 cleaner. Malformed inline allows (unknown rule, justification\n\
                 under 15 chars) are reported rather than silently ignored.\n\n\
                 Compliant pattern:\n\
                     // analysis:allow(panic-path): index provably < w, asserted at entry\n\
                 Not suppressible — delete or fix the stale entry instead."
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Run every per-file rule over one file. (The cross-file
/// [`RuleId::EstimatorRegistry`] check runs at workspace level; see
/// [`check_workspace_registry`].)
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    determinism::check_nondeterminism(file, &mut findings);
    determinism::check_unwrap(file, &mut findings);
    determinism::check_float_reduction(file, &mut findings);
    determinism::check_seed_hygiene(file, &mut findings);
    panic_path::check(file, &mut findings);
    numeric::check_float_sanity(file, &mut findings);
    numeric::check_cast_truncation(file, &mut findings);
    findings.sort_by_key(|f| f.line);
    findings
}

/// Does this file carry the determinism contract (nondeterminism,
/// float-reduction, seed-hygiene)?
pub(crate) fn is_determinism_scope(file: &SourceFile) -> bool {
    file.kind == TargetKind::Lib
        && DETERMINISM_CRATES.contains(&file.crate_name.as_str())
}

/// Append a finding for `file` at `line`.
pub(crate) fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    rule: RuleId,
    line: usize,
    message: String,
) {
    findings.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        excerpt: file.line(line).trim().to_string(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    pub(crate) fn lib_file(text: &str) -> SourceFile {
        SourceFile::new("crates/sim/src/demo.rs", "sim", TargetKind::Lib, text)
    }

    pub(crate) fn rules_fired(text: &str) -> Vec<RuleId> {
        check_file(&lib_file(text)).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in ALL_RULES {
            if *rule == RuleId::StaleAllow {
                assert!(RuleId::from_name(rule.name()).is_none());
            } else {
                assert_eq!(RuleId::from_name(rule.name()), Some(*rule));
            }
        }
    }

    #[test]
    fn findings_carry_path_line_and_excerpt() {
        let text = "fn ok() {}\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let found = check_file(&lib_file(text));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].path, "crates/sim/src/demo.rs");
        assert_eq!(found[0].line, 2);
        assert!(found[0].excerpt.contains("x.unwrap()"));
        let rendered = found[0].to_string();
        assert!(rendered.starts_with("crates/sim/src/demo.rs:2: [unwrap]"), "{rendered}");
    }

    #[test]
    fn every_rule_has_an_explanation_and_summary() {
        for rule in ALL_RULES {
            assert!(!rule.summary().is_empty());
            assert!(rule.explanation().len() > 40, "{rule} explanation too thin");
        }
    }
}
