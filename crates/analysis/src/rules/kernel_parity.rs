//! Rule `kernel-parity`: batched kernels must stay provably equivalent to
//! a scalar reference.
//!
//! PR 4/PR 7 introduced a family of batched fill kernels (`fill_chunk`
//! overrides, `*_batch`/`*_batched` siblings, `fill_*` buffer fills)
//! dispatched from [`RfidSystem`]. The repo's convention — every such
//! kernel has a scalar reference sibling and an equivalence proptest under
//! `crates/*/tests/` — was enforced only by authors remembering to write
//! the test. This rule walks the call graph instead: every kernel-shaped
//! `fn` *reachable from `RfidSystem` dispatch* must
//!
//! 1. have a scalar sibling (`responses` on the same type for plan
//!    kernels, `next_<x>` for `fill_<x>` buffer fills, the suffix-stripped
//!    name for `*_batch`/`*_batched`), and
//! 2. be named — directly or via its impl type — in a proptest file under
//!    some crate's `tests/` directory.
//!
//! Kernel-shaped means: matching name pattern *and* a `mut` somewhere in
//! the parameter list (kernels write into a sink, buffer, or their own
//! state) — this keeps policy getters like `fill_dispatch()` and
//! predicates like `use_batched()` out of scope. Trait-default methods are
//! exempt (the default `fill_chunk` *is* the scalar reference), as are
//! `#[cfg(test)]` and `#[doc(hidden)]` fns (the latter is the documented
//! opt-out for deprecated kernels kept only for benchmark comparisons).

use super::{push, Finding, RuleId};
use crate::callgraph::CallGraph;
use crate::source::{SourceFile, TargetKind};

/// The dispatch root: kernels are checked only if reachable from here.
const DISPATCH_TYPE: &str = "RfidSystem";

/// Run the rule. `tests` is the integration-test corpus (crate `tests/`
/// directories plus the workspace-root `tests/`).
pub fn check_kernel_parity(
    files: &[SourceFile],
    graph: &CallGraph,
    tests: &[SourceFile],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let seeds: Vec<usize> = graph
        .fns
        .iter()
        .enumerate()
        .filter(|(_, d)| d.self_type.as_deref() == Some(DISPATCH_TYPE))
        .map(|(i, _)| i)
        .collect();
    if seeds.is_empty() {
        return findings;
    }
    for f in graph.reachable_from(&seeds) {
        let def = &graph.fns[f];
        let file = &files[def.file];
        if file.kind != TargetKind::Lib || def.cfg_test || def.doc_hidden {
            continue;
        }
        // Trait-default methods are the scalar reference, not a kernel.
        if def.self_type.is_none() && def.trait_name.is_some() {
            continue;
        }
        if !kernel_shaped(file, def) {
            continue;
        }
        let self_type = def.self_type.as_deref();
        if !has_scalar_sibling(graph, self_type, &def.name) {
            push(
                findings.as_mut(),
                file,
                RuleId::KernelParity,
                def.line,
                format!(
                    "batched kernel `{}` reachable from {DISPATCH_TYPE} dispatch has no \
                     scalar reference sibling ({}); add one or mark the kernel \
                     #[doc(hidden)] with a justification",
                    def.qualified_name(),
                    expected_sibling(self_type, &def.name),
                ),
            );
        }
        if !has_proptest_evidence(tests, self_type, &def.name) {
            push(
                findings.as_mut(),
                file,
                RuleId::KernelParity,
                def.line,
                format!(
                    "batched kernel `{}` reachable from {DISPATCH_TYPE} dispatch appears in \
                     no equivalence proptest under crates/*/tests/; add a proptest asserting \
                     it matches its scalar reference",
                    def.qualified_name(),
                ),
            );
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings
}

/// Does `def` look like a batched kernel? Name pattern plus a `mut` in the
/// parameter list (kernels write into something).
fn kernel_shaped(file: &SourceFile, def: &crate::callgraph::FnDef) -> bool {
    let name = def.name.as_str();
    let named_like_one = name == "fill_chunk"
        || name.starts_with("fill_")
        || name.ends_with("_batched")
        || name.ends_with("_batch");
    named_like_one
        && def
            .header_tokens
            .clone()
            .any(|i| file.token_text(i) == "mut")
}

/// Is the scalar sibling defined somewhere in the workspace?
fn has_scalar_sibling(graph: &CallGraph, self_type: Option<&str>, name: &str) -> bool {
    if name == "fill_chunk" {
        return !graph.find_fns(self_type, "responses").is_empty();
    }
    if let Some(base) = name.strip_suffix("_batched").or_else(|| name.strip_suffix("_batch")) {
        return !graph.find_fns(self_type, base).is_empty();
    }
    if let Some(rest) = name.strip_prefix("fill_") {
        let next = format!("next_{rest}");
        return !graph.find_fns(self_type, &next).is_empty()
            || (self_type.is_some() && !graph.find_fns(self_type, "responses").is_empty());
    }
    true
}

/// Human-readable description of what sibling the rule expected.
fn expected_sibling(self_type: Option<&str>, name: &str) -> String {
    if name == "fill_chunk" {
        return "a `responses` method on the same type".to_string();
    }
    if let Some(base) = name.strip_suffix("_batched").or_else(|| name.strip_suffix("_batch")) {
        return format!("`{base}`");
    }
    if let Some(rest) = name.strip_prefix("fill_") {
        let on = self_type.map(|t| format!(" on `{t}`")).unwrap_or_default();
        return format!("`next_{rest}` or `responses`{on}");
    }
    "a scalar twin".to_string()
}

/// Does any crate-level proptest file name the kernel or its impl type?
/// The workspace-root `tests/` corpus deliberately does not count: the
/// convention places equivalence proptests next to the kernel's crate.
fn has_proptest_evidence(
    tests: &[SourceFile],
    self_type: Option<&str>,
    name: &str,
) -> bool {
    tests.iter().any(|t| {
        t.rel_path.starts_with("crates/")
            && t.mentions_ident("proptest")
            && (t.mentions_ident(name) || self_type.is_some_and(|ty| t.mentions_ident(ty)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::source::{SourceFile, TargetKind};

    const DISPATCH: &str = "pub struct RfidSystem;\n\
         impl RfidSystem {\n    pub fn run(&self, p: &Plan, sink: &mut Sink) { p.fill_chunk(sink); }\n}\n";

    fn run(lib: &str, tests_src: &[(&str, &str)]) -> Vec<Finding> {
        let files = vec![
            SourceFile::new("crates/sim/src/lib.rs", "sim", TargetKind::Lib, DISPATCH),
            SourceFile::new("crates/core/src/lib.rs", "core", TargetKind::Lib, lib),
        ];
        let graph = CallGraph::build(&files);
        let tests: Vec<SourceFile> = tests_src
            .iter()
            .map(|(p, c)| SourceFile::new(p, "core", TargetKind::Bin, c))
            .collect();
        check_kernel_parity(&files, &graph, &tests)
    }

    const PLAN_WITH_SIBLING: &str = "pub struct Plan;\n\
         impl Plan {\n\
             pub fn responses(&self, out: &mut Vec<usize>) { out.push(0); }\n\
             pub fn fill_chunk(&self, sink: &mut Sink) { sink.record(0); }\n\
         }\n";

    #[test]
    fn covered_kernel_passes() {
        let found = run(
            PLAN_WITH_SIBLING,
            &[(
                "crates/core/tests/proptests.rs",
                "use proptest::prelude::*;\nfn t() { let p = Plan; }\n",
            )],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn deleting_the_proptest_fires() {
        let found = run(PLAN_WITH_SIBLING, &[]);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("no equivalence proptest"), "{}", found[0].message);
    }

    #[test]
    fn root_tests_do_not_count_as_evidence() {
        let found = run(
            PLAN_WITH_SIBLING,
            &[(
                "tests/conformance.rs",
                "use proptest::prelude::*;\nfn t() { let p = Plan; }\n",
            )],
        );
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn missing_scalar_sibling_fires() {
        let found = run(
            "pub struct Plan;\n\
             impl Plan {\n    pub fn fill_chunk(&self, sink: &mut Sink) { sink.record(0); }\n}\n",
            &[(
                "crates/core/tests/proptests.rs",
                "use proptest::prelude::*;\nfn t() { let p = Plan; }\n",
            )],
        );
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("scalar reference sibling"), "{}", found[0].message);
    }

    #[test]
    fn unreachable_and_policy_fns_are_out_of_scope() {
        // `lonely_batch` is never called from RfidSystem; `use_batched`
        // has no `mut` parameter (policy predicate, not a kernel).
        let found = run(
            "pub struct Plan;\n\
             impl Plan {\n\
                 pub fn responses(&self, out: &mut Vec<usize>) { out.push(0); }\n\
                 pub fn fill_chunk(&self, sink: &mut Sink) { self.use_batched(1); sink.record(0); }\n\
                 pub fn use_batched(&self, n: usize) -> bool { n > 0 }\n\
                 pub fn lonely_batch(&self, out: &mut Vec<u64>) { out.push(1); }\n\
             }\n",
            &[(
                "crates/core/tests/proptests.rs",
                "use proptest::prelude::*;\nfn t() { let p = Plan; }\n",
            )],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn doc_hidden_kernels_are_exempt() {
        let found = run(
            "pub struct Plan;\n\
             impl Plan {\n\
                 pub fn responses(&self, out: &mut Vec<usize>) { out.push(0); }\n\
                 pub fn fill_chunk(&self, sink: &mut Sink) { self.slots_batch(sink); }\n\
                 #[doc(hidden)]\n    pub fn slots_batch(&self, sink: &mut Sink) { sink.record(0); }\n\
             }\n",
            &[(
                "crates/core/tests/proptests.rs",
                "use proptest::prelude::*;\nfn t() { let p = Plan; }\n",
            )],
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn no_dispatch_type_means_no_findings() {
        let files = vec![SourceFile::new(
            "crates/core/src/lib.rs",
            "core",
            TargetKind::Lib,
            "pub struct Plan;\nimpl Plan { pub fn fill_chunk(&self, s: &mut Sink) {} }\n",
        )];
        let graph = CallGraph::build(&files);
        let found = check_kernel_parity(&files, &graph, &[]);
        assert!(found.is_empty(), "fixtures without RfidSystem stay quiet");
    }
}
