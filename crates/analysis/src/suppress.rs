//! Inline suppressions: `// analysis:allow(rule): justification`.
//!
//! Where `analysis.toml` suppresses by *file + pattern* (good for
//! long-lived policy decisions), an inline allow rides on the offending
//! line itself, so the justification lives next to the code it excuses
//! and disappears with it:
//!
//! ```text
//! let w = counts[slot]; // analysis:allow(panic-path): slot < w asserted at fn entry
//!
//! // analysis:allow(float-sanity): golden CSV pins this exact expression
//! let tail = (1.0 - p).ln();
//! ```
//!
//! A suppression attaches to its own line (trailing form) or, when the
//! whole line is the comment, to the first following line that is not
//! itself a standalone allow (so several can stack above one statement).
//! The same sanity rules as `analysis.toml` apply: the rule name must be
//! real, the justification must carry at least
//! [`MIN_JUSTIFICATION`](crate::allowlist::MIN_JUSTIFICATION) characters,
//! and an allow that suppresses nothing is itself reported as
//! [`RuleId::StaleAllow`] — inline debt is flagged exactly like file debt.
//!
//! Allows are parsed from the **original** (unmasked) lines, since the
//! masker blanks comments — but only from real `//` comments: the masker's
//! comment map rejects markers inside string literals, doc comments
//! (`///`, `//!`) and block comments are treated as documentation about
//! the syntax, and `#[cfg(test)]` regions are skipped outright (no rule
//! ever fires there, so an allow could only rot).

use crate::allowlist::MIN_JUSTIFICATION;
use crate::rules::{Finding, RuleId};
use crate::source::SourceFile;

/// The marker that introduces an inline suppression.
const MARKER: &str = "analysis:allow(";

/// One parsed inline allow.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// 1-based line the allow suppresses (== `line` for trailing form).
    pub target: usize,
    /// The rule being suppressed (well-formed allows only).
    pub rule: Option<RuleId>,
    /// Why the allow is malformed, if it is.
    pub problem: Option<String>,
}

/// Parse every inline allow in `file`.
pub fn collect(file: &SourceFile) -> Vec<InlineAllow> {
    let mut allows = Vec::new();
    let mut lines = Vec::new(); // (line_no, standalone, body_after_marker)
    for line_no in 1..=file.line_count() {
        let text = file.line(line_no);
        let Some(pos) = text.find(MARKER) else { continue };
        // Rules never run inside #[cfg(test)] regions, so an allow there
        // could only ever be stale noise (test fixtures routinely *mention*
        // the syntax in string data): skip test regions entirely.
        if file.in_test_region(line_no) {
            continue;
        }
        // Only a real `//` comment carries an allow. The comment map tells
        // comments apart from string literals containing the marker, and
        // doc comments (`///`, `//!`) are documentation *about* the syntax,
        // never suppressions. Block comments are inert too.
        let Some(start) = file.comment_start_col(line_no, pos) else {
            continue;
        };
        let intro = &text[start..];
        if !intro.starts_with("//") || intro.starts_with("///") || intro.starts_with("//!") {
            continue;
        }
        let standalone = text[..start].trim().is_empty();
        lines.push((line_no, standalone, text[pos + MARKER.len()..].to_string()));
    }
    for (line_no, standalone, body) in &lines {
        let target = if *standalone {
            // First following line that is not itself a standalone allow.
            let mut t = line_no + 1;
            while lines.iter().any(|(l, s, _)| l == &t && *s) {
                t += 1;
            }
            if t > file.line_count() {
                0 // allow at EOF: suppresses nothing, reported stale
            } else {
                t
            }
        } else {
            *line_no
        };
        allows.push(parse_one(*line_no, target, body));
    }
    allows
}

/// Parse the text following `analysis:allow(` into an [`InlineAllow`].
fn parse_one(line: usize, target: usize, body: &str) -> InlineAllow {
    let malformed = |why: String| InlineAllow {
        line,
        target,
        rule: None,
        problem: Some(why),
    };
    let Some(close) = body.find(')') else {
        return malformed("missing ')' after the rule name".to_string());
    };
    let name = body[..close].trim();
    let Some(rule) = RuleId::from_name(name) else {
        return malformed(format!(
            "unknown rule '{name}' (see --list-rules; stale-allow is not suppressible)"
        ));
    };
    let rest = &body[close + 1..];
    let justification = rest.strip_prefix(':').map(str::trim).unwrap_or("");
    if justification.len() < MIN_JUSTIFICATION {
        return malformed(format!(
            "justification too short (need ≥ {MIN_JUSTIFICATION} characters after \
             '({name}):' explaining why the suppression is sound)"
        ));
    }
    InlineAllow {
        line,
        target,
        rule: Some(rule),
        problem: None,
    }
}

/// Apply every file's inline allows to `findings`. Returns the findings
/// that survive — plus a [`RuleId::StaleAllow`] finding per malformed or
/// unused allow — and the number suppressed.
pub fn apply_inline(files: &[SourceFile], findings: Vec<Finding>) -> (Vec<Finding>, usize) {
    let mut tables: Vec<(&SourceFile, Vec<InlineAllow>, Vec<bool>)> = files
        .iter()
        .map(|f| {
            let allows = collect(f);
            let used = vec![false; allows.len()];
            (f, allows, used)
        })
        .filter(|(_, allows, _)| !allows.is_empty())
        .collect();
    let mut kept = Vec::new();
    let mut suppressed = 0;
    for finding in findings {
        let mut hit = false;
        for (file, allows, used) in &mut tables {
            if file.rel_path != finding.path {
                continue;
            }
            for (i, allow) in allows.iter().enumerate() {
                if allow.problem.is_none()
                    && allow.target == finding.line
                    && allow.rule == Some(finding.rule)
                {
                    used[i] = true;
                    hit = true;
                }
            }
        }
        if hit {
            suppressed += 1;
        } else {
            kept.push(finding);
        }
    }
    for (file, allows, used) in tables {
        for (allow, used) in allows.iter().zip(used) {
            let message = match &allow.problem {
                Some(why) => format!("malformed inline allow: {why}"),
                None if !used => format!(
                    "inline allow for [{}] suppresses nothing; delete it",
                    allow.rule.map(RuleId::name).unwrap_or("?")
                ),
                None => continue,
            };
            kept.push(Finding {
                rule: RuleId::StaleAllow,
                path: file.rel_path.clone(),
                line: allow.line,
                message,
                excerpt: file.line(allow.line).trim().to_string(),
            });
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::check_file;
    use crate::source::TargetKind;

    fn sim(text: &str) -> SourceFile {
        SourceFile::new("crates/sim/src/demo.rs", "sim", TargetKind::Lib, text)
    }

    fn scan(text: &str) -> (Vec<Finding>, usize) {
        let f = sim(text);
        let findings = check_file(&f);
        apply_inline(&[f], findings)
    }

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let (kept, n) = scan(
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // analysis:allow(unwrap): fixture proves the trailing form\n",
        );
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn standalone_allow_suppresses_the_next_code_line() {
        let (kept, n) = scan(
            "// analysis:allow(unwrap): fixture proves the standalone form\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        );
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn stacked_standalone_allows_share_one_target() {
        let text = "\
// analysis:allow(unwrap): first of two stacked suppressions
// analysis:allow(nondeterminism): second of two stacked suppressions
pub fn f(x: Option<std::time::Instant>) -> std::time::Instant { let _ = std::time::Instant::now(); x.unwrap() }
";
        let (kept, n) = scan(text);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(n, 2);
    }

    #[test]
    fn wrong_rule_does_not_suppress() {
        let (kept, n) = scan(
            "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // analysis:allow(nondeterminism): wrong rule, both must surface\n",
        );
        // The unwrap finding survives AND the allow is stale.
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 2, "{kept:?}");
        assert!(kept.iter().any(|f| f.rule == RuleId::Unwrap));
        assert!(kept.iter().any(|f| f.rule == RuleId::StaleAllow));
    }

    #[test]
    fn unused_allow_is_reported_stale() {
        let (kept, n) = scan("pub fn ok() {} // analysis:allow(unwrap): nothing to suppress on this line\n");
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RuleId::StaleAllow);
        assert_eq!(kept[0].line, 1);
        assert!(kept[0].message.contains("suppresses nothing"), "{}", kept[0].message);
    }

    #[test]
    fn short_justification_and_unknown_rule_are_malformed() {
        let (kept, _) = scan("pub fn ok() {} // analysis:allow(unwrap): too short\n");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("justification too short"), "{}", kept[0].message);

        let (kept, _) = scan("pub fn ok() {} // analysis:allow(bogus-rule): a perfectly long justification\n");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("unknown rule"), "{}", kept[0].message);

        let (kept, _) = scan("pub fn ok() {} // analysis:allow(stale-allow): stale-allow is not suppressible\n");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].message.contains("unknown rule"), "{}", kept[0].message);
    }

    #[test]
    fn marker_inside_a_string_is_inert() {
        let (kept, n) = scan(
            "pub const DOC: &str = \"analysis:allow(unwrap): not a comment, just documentation text\";\n",
        );
        assert_eq!(n, 0);
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn doc_comments_mentioning_the_syntax_are_inert() {
        let (kept, n) = scan(
            "/// Suppress with `// analysis:allow(unwrap): reason` on the line.\npub fn ok() {}\n",
        );
        assert_eq!(n, 0);
        assert!(kept.is_empty(), "{kept:?}");

        let (kept, _) = scan("//! analysis:allow(unwrap): module docs are not suppressions\npub fn ok() {}\n");
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn comment_shaped_marker_inside_a_string_is_inert() {
        let (kept, n) = scan(
            "pub const EXAMPLE: &str = \"// analysis:allow(unwrap): string data, not a comment\";\n",
        );
        assert_eq!(n, 0);
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn allows_inside_test_regions_are_ignored() {
        let text = "\
pub fn ok() {}

#[cfg(test)]
mod tests {
    // analysis:allow(unwrap): rules never run in test regions anyway
    fn helper(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
";
        let (kept, n) = scan(text);
        assert_eq!(n, 0);
        assert!(kept.is_empty(), "{kept:?}");
    }

    #[test]
    fn allow_at_eof_with_no_code_below_is_stale() {
        let (kept, n) = scan("pub fn ok() {}\n// analysis:allow(unwrap): dangling allow with nothing below\n");
        assert_eq!(n, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, RuleId::StaleAllow);
    }
}
