//! `rfid-analysis` — run the workspace determinism lints.
//!
//! ```text
//! cargo run -p rfid-analysis --              # scan the workspace, exit 1 on findings
//! cargo run -p rfid-analysis -- --root DIR   # scan another tree (used by fixtures)
//! cargo run -p rfid-analysis -- --list-rules # print the rule set
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage or I/O error.

use rfid_analysis::{scan_workspace, RuleId};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
rfid-analysis — workspace determinism linter (see ANALYSIS.md)

USAGE:
  rfid-analysis [--root DIR] [--list-rules]

  --root DIR    workspace root to scan (default: this workspace)
  --list-rules  print the rule set and exit
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--root needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(value));
                i += 2;
            }
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("rfid-analysis: {err}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    let noun = if report.findings.len() == 1 {
        "finding"
    } else {
        "findings"
    };
    println!(
        "rfid-analysis: {} {noun}, {} suppressed, {} files scanned",
        report.findings.len(),
        report.suppressed,
        report.files_scanned
    );
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: two levels above this crate's manifest directory
/// (`crates/analysis` → the repository root). Falls back to the current
/// directory when built outside Cargo.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(manifest) => {
            let manifest = PathBuf::from(manifest);
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(Into::into)
                .unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}

fn list_rules() {
    for rule in [
        RuleId::Nondeterminism,
        RuleId::Unwrap,
        RuleId::FloatReduction,
        RuleId::SeedHygiene,
        RuleId::StaleAllow,
    ] {
        let what = match rule {
            RuleId::Nondeterminism => {
                "wall-clock, OS entropy, or hash-order dependence in determinism-scoped library crates"
            }
            RuleId::Unwrap => ".unwrap() / .expect( outside tests, benches, and binaries",
            RuleId::FloatReduction => {
                "float accumulation inside par_fold / thread::scope closures (chunking-dependent results)"
            }
            RuleId::SeedHygiene => {
                "PRNG seeded from a literal or ad-hoc arithmetic instead of rfid_hash::stream_seed"
            }
            RuleId::StaleAllow => "analysis.toml entry that suppresses nothing (not suppressible)",
        };
        println!("{:<16} {what}", rule.name());
    }
}
