//! `rfid-analysis` — run the workspace determinism lints.
//!
//! ```text
//! cargo run -p rfid-analysis --                   # scan, exit 1 on findings
//! cargo run -p rfid-analysis -- --root DIR        # scan another tree (fixtures)
//! cargo run -p rfid-analysis -- --format sarif    # SARIF 2.1.0 to stdout (CI)
//! cargo run -p rfid-analysis -- --explain unwrap  # rationale + compliant pattern
//! cargo run -p rfid-analysis -- --list-rules      # print the rule set
//! cargo run -p rfid-analysis -- --dump-callgraph  # workspace call graph as JSON
//! cargo run -p rfid-analysis -- --dump-effects    # rfid-effects/v1 summaries as JSON
//! ```
//!
//! Exit codes: `0` clean, `1` findings reported, `2` usage, I/O, or
//! encoding error.

use rfid_analysis::{render_json, render_sarif, render_text, scan_workspace, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
rfid-analysis — workspace determinism linter (see ANALYSIS.md)

USAGE:
  rfid-analysis [--root DIR] [--format text|json|sarif] [--dump-callgraph]
                [--dump-effects] [--list-rules] [--explain RULE]

  --root DIR       workspace root to scan (default: this workspace)
  --format KIND    output format: text (default), json, or sarif (SARIF 2.1.0)
  --dump-callgraph print the workspace call graph as JSON and exit 0
                   (findings are not reported in this mode)
  --dump-effects   print the rfid-effects/v1 per-fn effect summaries as JSON
                   and exit 0 (findings are not reported in this mode)
  --explain RULE   print a rule's rationale and compliant pattern, then exit
  --list-rules     print the rule set and exit
";

/// Output format selected by `--format`.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut dump_callgraph = false;
    let mut dump_effects = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--root needs a value\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(value));
                i += 2;
            }
            "--format" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--format needs a value (text, json, or sarif)\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        eprintln!("unknown format '{other}' (expected text, json, or sarif)");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            "--explain" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--explain needs a rule name (see --list-rules)\n\n{USAGE}");
                    return ExitCode::from(2);
                };
                return explain(value);
            }
            "--dump-callgraph" => {
                dump_callgraph = true;
                i += 1;
            }
            "--dump-effects" => {
                dump_effects = true;
                i += 1;
            }
            "--list-rules" => {
                list_rules();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}'\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let report = match scan_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("rfid-analysis: {err}");
            return ExitCode::from(2);
        }
    };
    if dump_callgraph {
        println!("{}", report.callgraph.to_json().write());
        return ExitCode::SUCCESS;
    }
    if dump_effects {
        println!("{}", report.effects.to_json(&report.callgraph).write());
        return ExitCode::SUCCESS;
    }
    match format {
        Format::Text => print!("{}", render_text(&report)),
        Format::Json => println!("{}", render_json(&report)),
        Format::Sarif => println!("{}", render_sarif(&report)),
    }
    if format != Format::Text {
        // Keep stdout machine-pure; the human summary goes to stderr.
        eprintln!(
            "rfid-analysis: {} findings, {} suppressed ({} inline), {} files scanned",
            report.findings.len(),
            report.suppressed + report.suppressed_inline,
            report.suppressed_inline,
            report.files_scanned
        );
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: two levels above this crate's manifest directory
/// (`crates/analysis` → the repository root). Falls back to the current
/// directory when built outside Cargo.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(manifest) => {
            let manifest = PathBuf::from(manifest);
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(Into::into)
                .unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}

fn list_rules() {
    for rule in ALL_RULES {
        println!("{:<19} {}", rule.name(), rule.summary());
    }
}

/// `--explain RULE`: the long-form rationale. Accepts every rule name,
/// including `stale-allow` (which `RuleId::from_name` deliberately rejects
/// because it is not *suppressible* — it is still explainable).
fn explain(name: &str) -> ExitCode {
    match ALL_RULES.iter().find(|r| r.name() == name) {
        Some(rule) => {
            println!("{} — {}\n", rule.name(), rule.summary());
            println!("{}", rule.explanation());
            ExitCode::SUCCESS
        }
        None => {
            eprintln!("unknown rule '{name}'; known rules:");
            for rule in ALL_RULES {
                eprintln!("  {}", rule.name());
            }
            ExitCode::from(2)
        }
    }
}
