//! Must-not-panic entry points for the fuzzed analysis front-end.
//!
//! The out-of-tree cargo-fuzz targets under `fuzz/fuzz_targets/` are thin
//! wrappers around these functions, and the in-tree
//! `tests/fuzz_smoke.rs` drives the same bodies over the seed corpora
//! plus deterministic mutations — so the invariants are exercised on
//! every `cargo test` even on hosts without `cargo-fuzz`, and a panic
//! found by the fuzzer reproduces as a plain unit-test call.
//!
//! Each body takes raw fuzzer bytes. Inputs that are not UTF-8 are
//! ignored (the scanner rejects non-UTF-8 files before any of this code
//! runs, so feeding the front-end invalid UTF-8 would fuzz a state the
//! pipeline cannot reach).
//!
//! Invariants enforced:
//! * masking is length- and UTF-8-preserving (only byte→space rewrites);
//! * `mask → lex → reserialize` reproduces the masked text byte-for-byte
//!   (no token drops a byte, invents one, or misplaces a span);
//! * the scope tree's brace matching yields well-formed ranges on
//!   arbitrary input: every byte range lies inside the file, every child
//!   range nests inside its parent, and `chain_at` returns scopes that
//!   actually contain the queried offset;
//! * `Allowlist::parse` returns `Ok` or `Err` but never panics.

use crate::allowlist::Allowlist;
use crate::lexer::{lex, reserialize};
use crate::mask::mask_source;
use crate::source::{SourceFile, TargetKind};

/// Fuzz body: mask → lex → `reserialize` round-trip.
pub fn lex_round_trip(data: &[u8]) {
    let Ok(src) = std::str::from_utf8(data) else {
        return;
    };
    let masked_bytes = mask_source(src);
    assert_eq!(
        masked_bytes.len(),
        src.len(),
        "masking changed the byte length"
    );
    let masked = String::from_utf8(masked_bytes)
        .expect("masking must keep UTF-8 input UTF-8"); // analysis:allow(unwrap): a fuzz body aborts loudly on violation — the panic IS the oracle
    let tokens = lex(&masked);
    let back = reserialize(&tokens, &masked);
    assert_eq!(
        back,
        masked.as_bytes(),
        "token stream does not reserialize to the masked source"
    );
    // Spans must be in order and disjoint — reserialize would already
    // scramble on overlap, but check directly for a sharper failure.
    for pair in tokens.windows(2) {
        assert!(
            pair[0].end <= pair[1].start,
            "token spans overlap or regress: {}..{} then {}..{}",
            pair[0].start,
            pair[0].end,
            pair[1].start,
            pair[1].end
        );
    }
}

/// Fuzz body: scope-tree brace matching on arbitrary (possibly
/// unbalanced) input.
pub fn scope_tree(data: &[u8]) {
    let Ok(src) = std::str::from_utf8(data) else {
        return;
    };
    let file = SourceFile::new("fuzz/input.rs", "sim", TargetKind::Lib, src);
    let len = file.masked().len();
    let scopes = &file.scopes().scopes;
    for (i, scope) in scopes.iter().enumerate() {
        assert!(
            scope.byte_range.start <= scope.byte_range.end && scope.byte_range.end <= len,
            "scope {i} has byte range {:?} outside the {len}-byte file",
            scope.byte_range
        );
        assert!(
            scope.lines.start <= scope.lines.end,
            "scope {i} has inverted line range {:?}",
            scope.lines
        );
        if let Some(parent) = scope.parent {
            assert!(parent < i, "scope {i} points at a later parent {parent}");
            let p = &scopes[parent].byte_range;
            assert!(
                p.start <= scope.byte_range.start && scope.byte_range.end <= p.end,
                "scope {i} {:?} escapes its parent {parent} {:?}",
                scope.byte_range,
                p
            );
        }
    }
    // chain_at must agree with the ranges it reports.
    for offset in [0, len / 2, len.saturating_sub(1)] {
        for idx in file.scopes().chain_at(offset) {
            assert!(
                scopes[idx].byte_range.contains(&offset),
                "chain_at({offset}) returned scope {idx} with range {:?}",
                scopes[idx].byte_range
            );
        }
    }
    // Derived queries must hold up too (these walk the same structures).
    for line in 1..=file.line_count() {
        let _ = file.in_test_region(line);
    }
    let _ = file.scopes().enclosing_fn(len / 2);
    let _ = file.scopes().describe(len / 2);
}

/// Fuzz body: `analysis.toml` parsing never panics.
pub fn allowlist_parse(data: &[u8]) {
    let Ok(src) = std::str::from_utf8(data) else {
        return;
    };
    match Allowlist::parse(src) {
        Ok(list) => {
            // Parsed entries satisfy the parser's own contract.
            for entry in &list.entries {
                assert!(
                    entry.justification.trim().len() >= crate::allowlist::MIN_JUSTIFICATION,
                    "parser accepted an under-justified entry"
                );
                assert!(entry.defined_at >= 1, "entry line numbers are 1-based");
            }
        }
        Err(msg) => assert!(
            msg.contains("analysis.toml"),
            "parse errors must point into the file: {msg}"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_accept_ordinary_rust() {
        let src = b"pub fn f(x: u64) -> u64 { x * 2 } // comment\n";
        lex_round_trip(src);
        scope_tree(src);
    }

    #[test]
    fn bodies_ignore_non_utf8() {
        lex_round_trip(&[0xFF, 0xFE, b'f', b'n']);
        scope_tree(&[0xFF, 0xFE, b'{']);
        allowlist_parse(&[0xC0, 0x80]);
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        scope_tree(b"}}}{{{fn f( {\n");
        scope_tree(b"impl { impl { fn");
        lex_round_trip(b"\"unterminated string\n'x }");
    }

    #[test]
    fn allowlist_parse_handles_garbage() {
        allowlist_parse(b"[[allow]]\nrule = \"unwrap\"\n= = =\n");
        allowlist_parse(b"rule before any table\n");
        allowlist_parse("[[allow]]\nrule = \"unwrap\"\npath = \"x\"\njustification = \"long enough to pass the bar\"\n".as_bytes());
    }
}
