//! Deterministic smoke pass over the fuzz surface.
//!
//! `fuzz/` proper needs nightly + `cargo-fuzz`; this test keeps the same
//! bodies honest on every `cargo test` by replaying each seed corpus
//! through `rfid_analysis::fuzz_surface` and then hammering the bodies
//! with deterministic mutations of the seeds (byte flips, truncations,
//! splices) from a fixed-seed xorshift. Any panic the nightly fuzzer
//! finds lands as a corpus file here and reproduces forever after.

use rfid_analysis::fuzz_surface::{allowlist_parse, lex_round_trip, scope_tree};
use std::path::{Path, PathBuf};

/// Mutations tried per corpus seed. Small enough to stay sub-second,
/// large enough to shake out off-by-ones around the mutated regions.
const MUTATIONS_PER_SEED: u64 = 64;

fn corpus_dir(target: &str) -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the root")
        .join("fuzz")
        .join("corpus")
        .join(target)
}

fn seeds(target: &str) -> Vec<(PathBuf, Vec<u8>)> {
    let dir = corpus_dir(target);
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus {}: {e}", dir.display()));
    let mut out: Vec<(PathBuf, Vec<u8>)> = entries
        .flatten()
        .map(|entry| {
            let path = entry.path();
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("read seed {}: {e}", path.display()));
            (path, bytes)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "empty corpus at {}", dir.display());
    out
}

/// Fixed-seed xorshift64* — the mutation schedule must be identical on
/// every host so a failure here is a failure everywhere.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Flip bytes, truncate, or splice the seed, deterministically.
fn mutate(seed: &[u8], rng: &mut XorShift) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    if bytes.is_empty() {
        return vec![(rng.next() & 0xFF) as u8];
    }
    match rng.next() % 4 {
        0 => {
            // Flip a handful of bytes.
            for _ in 0..1 + rng.next() % 8 {
                let i = (rng.next() as usize) % bytes.len();
                bytes[i] = (rng.next() & 0xFF) as u8;
            }
        }
        1 => {
            // Truncate mid-token.
            bytes.truncate((rng.next() as usize) % bytes.len());
        }
        2 => {
            // Splice a chunk onto itself (repeats headers, unbalances braces).
            let at = (rng.next() as usize) % bytes.len();
            let chunk: Vec<u8> = bytes[at..].to_vec();
            bytes.extend_from_slice(&chunk);
        }
        _ => {
            // Insert structural noise where it hurts the most.
            let noise: &[u8] = match rng.next() % 5 {
                0 => b"{",
                1 => b"}",
                2 => b"\"",
                3 => b"[[allow]]",
                _ => b"//",
            };
            let at = (rng.next() as usize) % bytes.len();
            let mut spliced = bytes[..at].to_vec();
            spliced.extend_from_slice(noise);
            spliced.extend_from_slice(&bytes[at..]);
            bytes = spliced;
        }
    }
    bytes
}

fn drive(target: &str, body: fn(&[u8])) {
    let mut rng = XorShift(0x5EED_0BAD_F00D_u64);
    for (path, seed) in seeds(target) {
        body(&seed);
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&seed, &mut rng);
            // A panic's message won't name the input, so wrap with context.
            let outcome = std::panic::catch_unwind(|| body(&mutant));
            if outcome.is_err() {
                panic!(
                    "fuzz body '{target}' panicked on a mutation of {} \
                     ({} bytes); save the input as a corpus file to pin it",
                    path.display(),
                    mutant.len()
                );
            }
        }
    }
}

#[test]
fn lex_round_trip_smoke() {
    drive("lex_round_trip", lex_round_trip);
}

#[test]
fn scope_tree_smoke() {
    drive("scope_tree", scope_tree);
}

#[test]
fn allowlist_parse_smoke() {
    drive("allowlist_parse", allowlist_parse);
}

#[test]
fn bodies_survive_empty_and_tiny_inputs() {
    for body in [lex_round_trip, scope_tree, allowlist_parse] {
        body(b"");
        body(b"{");
        body(b"}");
        body(b"\"");
        body(&[0xFF]);
    }
}
