//! Workspace-wide lexer property: tokenizing masked source is lossless.
//!
//! The scope tree, and with it every v2 rule, is built from the token
//! stream — so the one invariant everything rests on is that the lexer
//! neither drops nor invents bytes. `reserialize` lays the tokens back
//! over a whitespace canvas; if the result is byte-for-byte the masked
//! input, every non-whitespace byte was captured by exactly one token
//! with a correct span. This test enforces that over **every** `.rs`
//! file in the repository, so any Rust construct the workspace adopts
//! becomes part of the lexer's test corpus automatically.

use rfid_analysis::callgraph::{CallGraph, Resolution};
use rfid_analysis::dataflow::Dataflow;
use rfid_analysis::effects::{Effect, Effects};
use rfid_analysis::lexer::{lex, reserialize};
use rfid_analysis::mask::mask_source;
use rfid_analysis::source::{SourceFile, TargetKind};
use std::path::{Path, PathBuf};

/// The repository root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the root")
        .to_path_buf()
}

/// Every `.rs` file in the repository, build products and VCS internals
/// excluded.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rust_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn lexer_reserializes_every_workspace_file_byte_for_byte() {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rust_files(&root, &mut paths);
    paths.sort();
    assert!(
        paths.len() > 50,
        "walker found only {} files under {} — wrong root?",
        paths.len(),
        root.display()
    );
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let masked_bytes = mask_source(&text);
        let masked = String::from_utf8_lossy(&masked_bytes);
        let tokens = lex(&masked);
        let back = reserialize(&tokens, &masked);
        if back != masked.as_bytes() {
            let mismatch = back
                .iter()
                .zip(masked.as_bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(back.len().min(masked.len()));
            panic!(
                "{}: token stream does not reserialize to the masked source \
                 (first divergence at byte {mismatch}, {} tokens)",
                path.display(),
                tokens.len()
            );
        }
    }
}

#[test]
fn masking_preserves_length_and_line_structure_everywhere() {
    // Companion invariant: masked text must stay byte-aligned with the
    // original, or every reported line/offset would drift.
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rust_files(&root, &mut paths);
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let masked = mask_source(&text);
        assert_eq!(masked.len(), text.len(), "{}: length drift", path.display());
        for (i, (&m, o)) in masked.iter().zip(text.bytes()).enumerate() {
            if o == b'\n' || m == b'\n' {
                assert_eq!(m, o, "{}: newline drift at byte {i}", path.display());
            }
        }
    }
}

/// Load every rule-scanned source of the real workspace the way
/// `scan_workspace` does: `crates/*/src` plus the root crate's `src/`,
/// with the crate name derived from the path.
fn workspace_sources() -> Vec<SourceFile> {
    let root = workspace_root();
    let mut roots: Vec<(PathBuf, String)> = vec![(root.join("src"), ".".to_string())];
    for entry in std::fs::read_dir(root.join("crates")).expect("crates dir").flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        roots.push((entry.path().join("src"), name));
    }
    roots.sort();
    let mut files = Vec::new();
    for (dir, crate_name) in roots {
        if !dir.is_dir() {
            continue;
        }
        let mut paths = Vec::new();
        collect_rust_files(&dir, &mut paths);
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(&root)
                .expect("under root")
                .to_string_lossy()
                .replace('\\', "/");
            let kind = if rel.ends_with("/main.rs") || rel.contains("/bin/") {
                TargetKind::Bin
            } else {
                TargetKind::Lib
            };
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            files.push(SourceFile::new(&rel, &crate_name, kind, &text));
        }
    }
    assert!(files.len() > 50, "only {} sources found", files.len());
    files
}

/// One call edge spelled with qualified names instead of indexes:
/// (caller, callee name, sorted resolved targets or the external tag).
type EdgeSignature = (String, String, Vec<String>);

/// Order-independent signature of a call graph: named fns plus every call
/// edge spelled with qualified names instead of indexes.
fn graph_signature(g: &CallGraph) -> (Vec<String>, Vec<EdgeSignature>) {
    let mut fns: Vec<String> = g
        .fns
        .iter()
        .map(|d| format!("{}:{}:{}", d.rel_path, d.name, d.line))
        .collect();
    fns.sort();
    let mut calls: Vec<EdgeSignature> = g
        .calls
        .iter()
        .map(|c| {
            let targets = match &c.resolution {
                Resolution::Resolved(ts) => {
                    let mut names: Vec<String> =
                        ts.iter().map(|&t| g.fns[t].qualified_name()).collect();
                    names.sort();
                    names
                }
                Resolution::External(n) => vec![format!("ext:{n}")],
            };
            (g.fns[c.caller].qualified_name(), c.name.clone(), targets)
        })
        .collect();
    calls.sort();
    (fns, calls)
}

#[test]
fn every_resolved_edge_points_at_a_real_workspace_fn() {
    let files = workspace_sources();
    let graph = CallGraph::build(&files);
    assert!(graph.fns.len() > 100, "suspiciously small fn table");
    for site in &graph.calls {
        assert!(site.caller < graph.fns.len(), "caller index out of range");
        let Resolution::Resolved(targets) = &site.resolution else {
            continue;
        };
        assert!(!targets.is_empty(), "resolved edge with no targets");
        for &t in targets {
            let def = &graph.fns[t];
            assert_eq!(
                def.name, site.name,
                "call to `{}` at {}:{} resolved to `{}`",
                site.name, files[site.file].rel_path, site.line, def.name
            );
        }
    }
}

#[test]
fn call_graph_is_deterministic_under_file_order_shuffles() {
    let files = workspace_sources();
    let baseline = graph_signature(&CallGraph::build(&files));
    // Reversal plus a deterministic interleave cover both "sorted input"
    // and "arbitrary input" orderings without a randomness dependency.
    let mut reversed = workspace_sources();
    reversed.reverse();
    assert_eq!(baseline, graph_signature(&CallGraph::build(&reversed)));
    let mut interleaved = workspace_sources();
    interleaved.sort_by_key(|f| {
        let h = f
            .rel_path
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
        (h, f.rel_path.clone())
    });
    assert_eq!(baseline, graph_signature(&CallGraph::build(&interleaved)));
}

#[test]
fn every_workspace_crate_receives_resolved_edges() {
    // Mirror of the CI `--dump-callgraph` gate: if cross-crate resolution
    // regresses, this fails locally before the workflow does.
    let files = workspace_sources();
    let graph = CallGraph::build(&files);
    let crates: std::collections::BTreeSet<&str> =
        files.iter().map(|f| f.crate_name.as_str()).collect();
    for crate_name in crates {
        if crate_name == "." {
            continue; // the root bin crate is a dispatch shell, not a callee
        }
        assert!(
            graph.resolved_edges_into(crate_name) >= 1,
            "no resolved call edges into crate '{crate_name}'"
        );
    }
}

#[test]
fn effects_json_is_deterministic_under_file_order_shuffles() {
    // The `rfid-effects/v1` dump is an archived CI artifact, so it must be
    // byte-identical regardless of the order the walker yields files in.
    // Definitions are canonically sorted inside CallGraph::build, which is
    // what makes string equality (not just set equality) the right bar.
    let files = workspace_sources();
    let graph = CallGraph::build(&files);
    let baseline = Effects::compute(&files, &graph).to_json(&graph).write();
    assert!(baseline.contains("rfid-effects/v1"));

    let mut reversed = workspace_sources();
    reversed.reverse();
    let graph2 = CallGraph::build(&reversed);
    assert_eq!(
        baseline,
        Effects::compute(&reversed, &graph2).to_json(&graph2).write()
    );

    let mut interleaved = workspace_sources();
    interleaved.sort_by_key(|f| {
        let h = f
            .rel_path
            .bytes()
            .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
        (h, f.rel_path.clone())
    });
    let graph3 = CallGraph::build(&interleaved);
    assert_eq!(
        baseline,
        Effects::compute(&interleaved, &graph3).to_json(&graph3).write()
    );
}

#[test]
fn effect_summaries_are_monotone_along_call_edges() {
    // Two lattice invariants of the fixpoint, checked over the real
    // workspace: a fn's summary contains its own direct seeds, and it
    // contains every resolved non-test callee's summary (the propagation
    // rule, transitively closed).
    let files = workspace_sources();
    let graph = CallGraph::build(&files);
    let effects = Effects::compute(&files, &graph);
    assert_eq!(effects.direct.len(), graph.fns.len());
    assert_eq!(effects.summary.len(), graph.fns.len());
    for id in 0..graph.fns.len() {
        assert!(
            effects.summary[id].is_superset(effects.direct[id]),
            "{}: summary lost a direct seed",
            graph.fns[id].qualified_name()
        );
        for call in graph.calls_from(id) {
            let Resolution::Resolved(targets) = &call.resolution else {
                continue;
            };
            for &t in targets {
                if graph.fns[t].cfg_test {
                    continue;
                }
                assert!(
                    effects.summary[id].is_superset(effects.summary[t]),
                    "{} calls {} but does not absorb its summary",
                    graph.fns[id].qualified_name(),
                    graph.fns[t].qualified_name()
                );
            }
        }
    }
    // Semantic anchors: the workspace demonstrably charges air time and
    // draws randomness somewhere, so an all-empty lattice (a broken
    // harvester) cannot pass.
    for effect in [Effect::ChargesAirTime, Effect::DrawsRandomness, Effect::Allocates] {
        assert!(
            effects.summary.iter().any(|s| s.contains(effect)),
            "no workspace fn carries {:?} — harvester regression?",
            effect
        );
    }
}

#[test]
fn dataflow_summaries_are_deterministic_under_file_order() {
    let files = workspace_sources();
    let graph = CallGraph::build(&files);
    let flow = Dataflow::compute(&files, &graph);
    let summary = |g: &CallGraph, fl: &Dataflow| {
        let mut rows: Vec<String> = (0..g.fns.len())
            .map(|f| {
                let params: Vec<String> = (0..g.fns[f].params.len())
                    .map(|i| format!("{:?}", fl.param_provenance(f, i)))
                    .collect();
                format!(
                    "{} params=[{}] ret={:?}",
                    g.fns[f].qualified_name(),
                    params.join(","),
                    fl.ret_provenance(f)
                )
            })
            .collect();
        rows.sort();
        rows
    };
    let baseline = summary(&graph, &flow);
    let mut reversed = workspace_sources();
    reversed.reverse();
    let graph2 = CallGraph::build(&reversed);
    let flow2 = Dataflow::compute(&reversed, &graph2);
    assert_eq!(baseline, summary(&graph2, &flow2));
}
