//! Workspace-wide lexer property: tokenizing masked source is lossless.
//!
//! The scope tree, and with it every v2 rule, is built from the token
//! stream — so the one invariant everything rests on is that the lexer
//! neither drops nor invents bytes. `reserialize` lays the tokens back
//! over a whitespace canvas; if the result is byte-for-byte the masked
//! input, every non-whitespace byte was captured by exactly one token
//! with a correct span. This test enforces that over **every** `.rs`
//! file in the repository, so any Rust construct the workspace adopts
//! becomes part of the lexer's test corpus automatically.

use rfid_analysis::lexer::{lex, reserialize};
use rfid_analysis::mask::mask_source;
use std::path::{Path, PathBuf};

/// The repository root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/analysis sits two levels below the root")
        .to_path_buf()
}

/// Every `.rs` file in the repository, build products and VCS internals
/// excluded.
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                collect_rust_files(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn lexer_reserializes_every_workspace_file_byte_for_byte() {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rust_files(&root, &mut paths);
    paths.sort();
    assert!(
        paths.len() > 50,
        "walker found only {} files under {} — wrong root?",
        paths.len(),
        root.display()
    );
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let masked_bytes = mask_source(&text);
        let masked = String::from_utf8_lossy(&masked_bytes);
        let tokens = lex(&masked);
        let back = reserialize(&tokens, &masked);
        if back != masked.as_bytes() {
            let mismatch = back
                .iter()
                .zip(masked.as_bytes())
                .position(|(a, b)| a != b)
                .unwrap_or(back.len().min(masked.len()));
            panic!(
                "{}: token stream does not reserialize to the masked source \
                 (first divergence at byte {mismatch}, {} tokens)",
                path.display(),
                tokens.len()
            );
        }
    }
}

#[test]
fn masking_preserves_length_and_line_structure_everywhere() {
    // Companion invariant: masked text must stay byte-aligned with the
    // original, or every reported line/offset would drift.
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rust_files(&root, &mut paths);
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let masked = mask_source(&text);
        assert_eq!(masked.len(), text.len(), "{}: length drift", path.display());
        for (i, (&m, o)) in masked.iter().zip(text.bytes()).enumerate() {
            if o == b'\n' || m == b'\n' {
                assert_eq!(m, o, "{}: newline drift at byte {i}", path.display());
            }
        }
    }
}
