//! Fixture workspaces for the determinism linter: one positive and one
//! negative case per rule, allowlist round-trips, and the `file:line`
//! reporting contract. Each test materialises a miniature workspace under
//! the OS temp directory and runs the same `scan_workspace` entry point
//! the `rfid-analysis` binary uses.

use rfid_analysis::{scan_workspace, Report, RuleId};
use std::path::PathBuf;

/// A scratch workspace that cleans up after itself.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "rfid-analysis-fixture-{}-{name}",
            std::process::id()
        ));
        // A stale tree from a crashed earlier run would pollute the scan.
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Self { root }
    }

    /// Write `text` at `rel` (slash-separated), creating parents.
    fn file(&self, rel: &str, text: &str) -> &Self {
        let path = self.root.join(rel);
        let parent = path.parent().expect("file has a parent");
        std::fs::create_dir_all(parent).expect("create fixture dirs");
        std::fs::write(&path, text).expect("write fixture file");
        self
    }

    fn scan(&self) -> Report {
        scan_workspace(&self.root).expect("fixture scan succeeds")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_tree_is_clean() {
    let fx = Fixture::new("clean");
    fx.file(
        "crates/sim/src/lib.rs",
        "//! A well-behaved crate.\npub fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn nondeterminism_fires_in_determinism_crate_libs() {
    let fx = Fixture::new("nondet-pos");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::Nondeterminism);
    assert_eq!(f.path, "crates/sim/src/lib.rs");
    assert_eq!(f.line, 1);
}

#[test]
fn nondeterminism_spares_bins_test_regions_and_out_of_scope_crates() {
    let fx = Fixture::new("nondet-neg");
    // Binary target of a determinism crate: wall-clock is fine there.
    fx.file(
        "crates/sim/src/bin/tool.rs",
        "fn main() { let _ = std::time::Instant::now(); }\n",
    );
    // Library target, but inside #[cfg(test)].
    fx.file(
        "crates/stats/src/lib.rs",
        "pub fn id(x: u64) -> u64 { x }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); }\n}\n",
    );
    // Crate outside the determinism scope entirely.
    fx.file(
        "crates/devtools/src/lib.rs",
        "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // Token only inside a comment and a string.
    fx.file(
        "crates/hash/src/lib.rs",
        "// never call Instant::now here\npub const HINT: &str = \"Instant::now\";\n",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn unwrap_fires_in_libs_but_not_bins_or_tests() {
    let fx = Fixture::new("unwrap");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    fx.file(
        "crates/sim/src/main.rs",
        "fn main() { let v: Option<u32> = Some(1); v.expect(\"fine in a binary\"); }\n",
    );
    // Integration tests directories are never scanned at all.
    fx.file(
        "crates/sim/tests/it.rs",
        "#[test]\nfn t() { None::<u32>.unwrap(); }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::Unwrap);
    assert_eq!((f.path.as_str(), f.line), ("crates/sim/src/lib.rs", 1));
    assert_eq!(report.files_scanned, 2, "tests/ must not be scanned");
}

#[test]
fn float_reduction_fires_only_for_float_folds() {
    let fx = Fixture::new("float");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn bad(items: &[f64]) -> f64 {
    par_fold(
        items,
        1,
        || 0.0f64,
        |acc, &x| *acc += x,
        |acc, other| *acc += other,
    )
}
",
    );
    fx.file(
        "crates/stats/src/lib.rs",
        "\
pub fn fine(items: &[u32]) -> u32 {
    par_fold(
        items,
        1,
        || 0u32,
        |acc, &x| *acc += x,
        |acc, other| *acc += other,
    )
}
",
    );
    let report = fx.scan();
    assert!(!report.findings.is_empty());
    assert!(report
        .findings
        .iter()
        .all(|f| f.rule == RuleId::FloatReduction && f.path == "crates/sim/src/lib.rs"));
}

#[test]
fn seed_hygiene_fires_for_literals_and_arithmetic_but_not_stream_seed() {
    let fx = Fixture::new("seed");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn bad_literal() -> u64 { SplitMix64::new(42).next_u64() }
pub fn bad_arith(seed: u64) -> u64 { SplitMix64::new(seed ^ 0xF1).next_u64() }
pub fn good(seed: u64) -> u64 { SplitMix64::new(rfid_hash::stream_seed(seed, 1)).next_u64() }
pub fn also_good(seed: u64) -> u64 { SplitMix64::new(seed).next_u64() }
",
    );
    let report = fx.scan();
    let lines: Vec<usize> = report
        .findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, RuleId::SeedHygiene);
            f.line
        })
        .collect();
    assert_eq!(lines, vec![1, 2], "{:?}", report.findings);
}

#[test]
fn allowlist_round_trip_suppresses_and_reports_stale_entries() {
    let fx = Fixture::new("allowlist");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    fx.file(
        "analysis.toml",
        "\
[[allow]]
rule = \"unwrap\"
path = \"crates/sim/src/lib.rs\"
pattern = \"x.unwrap()\"
justification = \"fixture: exercising the suppression round-trip\"
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);

    // Now make the entry stale: the offending line is gone, so the entry
    // itself must surface as a finding pointing into analysis.toml.
    fx.file("crates/sim/src/lib.rs", "pub fn f() -> u32 { 7 }\n");
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::StaleAllow);
    assert_eq!(f.path, "analysis.toml");
    assert_eq!(f.line, 1, "points at the [[allow]] header");
}

#[test]
fn malformed_allowlist_is_a_hard_error_not_a_silent_pass() {
    let fx = Fixture::new("badtoml");
    fx.file("crates/sim/src/lib.rs", "pub fn ok() {}\n");
    fx.file(
        "analysis.toml",
        "[[allow]]\nrule = \"unwrap\"\npath = \"x.rs\"\njustification = \"nope\"\n",
    );
    let err = scan_workspace(&fx.root).expect_err("short justification must fail the scan");
    assert!(err.to_string().contains("justification too short"), "{err}");
}

#[test]
fn findings_render_as_path_line_rule() {
    let fx = Fixture::new("render");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn pad() {}\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let rendered = report.findings[0].to_string();
    assert!(
        rendered.starts_with("crates/sim/src/lib.rs:2: [unwrap]"),
        "diagnostics must lead with clickable path:line — got {rendered}"
    );
    assert!(
        rendered.contains("x.unwrap()"),
        "diagnostics must quote the offending line — got {rendered}"
    );
}

#[test]
fn findings_are_sorted_by_path_then_line() {
    let fx = Fixture::new("sorted");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\npub fn b(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    fx.file(
        "crates/hash/src/lib.rs",
        "pub fn c(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    let keys: Vec<(String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(keys.len(), 3);
}
