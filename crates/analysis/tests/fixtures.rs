//! Fixture workspaces for the determinism linter: one positive and one
//! negative case per rule, allowlist round-trips, and the `file:line`
//! reporting contract. Each test materialises a miniature workspace under
//! the OS temp directory and runs the same `scan_workspace` entry point
//! the `rfid-analysis` binary uses.

use rfid_analysis::json::Value;
use rfid_analysis::output::{SARIF_SCHEMA, SARIF_VERSION};
use rfid_analysis::{
    render_json, render_sarif, scan_workspace, Error, Report, RuleId, ALL_RULES,
};
use std::path::PathBuf;

/// A scratch workspace that cleans up after itself.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!(
            "rfid-analysis-fixture-{}-{name}",
            std::process::id()
        ));
        // A stale tree from a crashed earlier run would pollute the scan.
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create fixture root");
        Self { root }
    }

    /// Write `text` at `rel` (slash-separated), creating parents.
    fn file(&self, rel: &str, text: &str) -> &Self {
        self.raw(rel, text.as_bytes())
    }

    /// Write raw `bytes` at `rel` (for non-UTF-8 fixtures).
    fn raw(&self, rel: &str, bytes: &[u8]) -> &Self {
        let path = self.root.join(rel);
        let parent = path.parent().expect("file has a parent");
        std::fs::create_dir_all(parent).expect("create fixture dirs");
        std::fs::write(&path, bytes).expect("write fixture file");
        self
    }

    fn scan(&self) -> Report {
        scan_workspace(&self.root).expect("fixture scan succeeds")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn clean_tree_is_clean() {
    let fx = Fixture::new("clean");
    fx.file(
        "crates/sim/src/lib.rs",
        "//! A well-behaved crate.\npub fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.files_scanned, 1);
    assert_eq!(report.suppressed, 0);
}

#[test]
fn nondeterminism_fires_in_determinism_crate_libs() {
    let fx = Fixture::new("nondet-pos");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn now() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::Nondeterminism);
    assert_eq!(f.path, "crates/sim/src/lib.rs");
    assert_eq!(f.line, 1);
}

#[test]
fn nondeterminism_spares_bins_test_regions_and_out_of_scope_crates() {
    let fx = Fixture::new("nondet-neg");
    // Binary target of a determinism crate: wall-clock is fine there.
    fx.file(
        "crates/sim/src/bin/tool.rs",
        "fn main() { let _ = std::time::Instant::now(); }\n",
    );
    // Library target, but inside #[cfg(test)].
    fx.file(
        "crates/stats/src/lib.rs",
        "pub fn id(x: u64) -> u64 { x }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = std::time::Instant::now(); }\n}\n",
    );
    // Crate outside the determinism scope entirely.
    fx.file(
        "crates/devtools/src/lib.rs",
        "pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    // Token only inside a comment and a string.
    fx.file(
        "crates/hash/src/lib.rs",
        "// never call Instant::now here\npub const HINT: &str = \"Instant::now\";\n",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn unwrap_fires_in_libs_but_not_bins_or_tests() {
    let fx = Fixture::new("unwrap");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\npub fn g(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    );
    fx.file(
        "crates/sim/src/main.rs",
        "fn main() { let v: Option<u32> = Some(1); v.expect(\"fine in a binary\"); }\n",
    );
    // Integration tests directories are never scanned at all.
    fx.file(
        "crates/sim/tests/it.rs",
        "#[test]\nfn t() { None::<u32>.unwrap(); }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::Unwrap);
    assert_eq!((f.path.as_str(), f.line), ("crates/sim/src/lib.rs", 1));
    assert_eq!(report.files_scanned, 2, "tests/ must not be scanned");
}

#[test]
fn float_reduction_fires_only_for_float_folds() {
    let fx = Fixture::new("float");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn bad(items: &[f64]) -> f64 {
    par_fold(
        items,
        1,
        || 0.0f64,
        |acc, &x| *acc += x,
        |acc, other| *acc += other,
    )
}
",
    );
    fx.file(
        "crates/stats/src/lib.rs",
        "\
pub fn fine(items: &[u32]) -> u32 {
    par_fold(
        items,
        1,
        || 0u32,
        |acc, &x| *acc += x,
        |acc, other| *acc += other,
    )
}
",
    );
    let report = fx.scan();
    assert!(!report.findings.is_empty());
    assert!(report
        .findings
        .iter()
        .all(|f| f.rule == RuleId::FloatReduction && f.path == "crates/sim/src/lib.rs"));
}

#[test]
fn seed_hygiene_fires_for_literals_and_arithmetic_but_not_stream_seed() {
    let fx = Fixture::new("seed");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn bad_literal() -> u64 { SplitMix64::new(42).next_u64() }
pub fn bad_arith(seed: u64) -> u64 { SplitMix64::new(seed ^ 0xF1).next_u64() }
pub fn good(seed: u64) -> u64 { SplitMix64::new(rfid_hash::stream_seed(seed, 1)).next_u64() }
pub fn also_good(seed: u64) -> u64 { SplitMix64::new(seed).next_u64() }
",
    );
    let report = fx.scan();
    let lines: Vec<usize> = report
        .findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, RuleId::SeedHygiene);
            f.line
        })
        .collect();
    assert_eq!(lines, vec![1, 2], "{:?}", report.findings);
}

#[test]
fn allowlist_round_trip_suppresses_and_reports_stale_entries() {
    let fx = Fixture::new("allowlist");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    fx.file(
        "analysis.toml",
        "\
[[allow]]
rule = \"unwrap\"
path = \"crates/sim/src/lib.rs\"
pattern = \"x.unwrap()\"
justification = \"fixture: exercising the suppression round-trip\"
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed, 1);

    // Now make the entry stale: the offending line is gone, so the entry
    // itself must surface as a finding pointing into analysis.toml.
    fx.file("crates/sim/src/lib.rs", "pub fn f() -> u32 { 7 }\n");
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::StaleAllow);
    assert_eq!(f.path, "analysis.toml");
    assert_eq!(f.line, 1, "points at the [[allow]] header");
}

#[test]
fn allow_entry_for_a_renamed_file_reports_the_rename() {
    // Regression: a rename used to leave the entry indistinguishable from
    // ordinary "code got cleaner" staleness. The scan must say the file
    // itself is gone.
    let fx = Fixture::new("renamed-allow");
    fx.file(
        "crates/sim/src/frame2.rs", // the file lives here now
        "pub fn f(x: u32) -> u32 { x }\n",
    );
    fx.file("crates/sim/src/lib.rs", "mod frame2;\n");
    fx.file(
        "analysis.toml",
        "\
[[allow]]
rule = \"unwrap\"
path = \"crates/sim/src/frame.rs\"
justification = \"fixture: entry left behind by a rename of frame.rs\"
",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::StaleAllow);
    assert_eq!(f.path, "analysis.toml");
    assert!(f.message.contains("renamed or deleted"), "{}", f.message);
    assert!(f.message.contains("crates/sim/src/frame.rs"), "{}", f.message);
}

#[test]
fn malformed_allowlist_is_a_hard_error_not_a_silent_pass() {
    let fx = Fixture::new("badtoml");
    fx.file("crates/sim/src/lib.rs", "pub fn ok() {}\n");
    fx.file(
        "analysis.toml",
        "[[allow]]\nrule = \"unwrap\"\npath = \"x.rs\"\njustification = \"nope\"\n",
    );
    let err = scan_workspace(&fx.root).expect_err("short justification must fail the scan");
    assert!(err.to_string().contains("justification too short"), "{err}");
}

#[test]
fn findings_render_as_path_line_rule() {
    let fx = Fixture::new("render");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn pad() {}\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);
    let rendered = report.findings[0].to_string();
    assert!(
        rendered.starts_with("crates/sim/src/lib.rs:2: [unwrap]"),
        "diagnostics must lead with clickable path:line — got {rendered}"
    );
    assert!(
        rendered.contains("x.unwrap()"),
        "diagnostics must quote the offending line — got {rendered}"
    );
}

#[test]
fn panic_path_distinguishes_guards_from_hot_paths() {
    let fx = Fixture::new("panic-path");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn guarded(xs: &[u32], i: usize) -> u32 {
    assert!(i < xs.len(), \"top-of-fn precondition guard is fine\");
    let mut total = 0;
    for _ in 0..3 {
        assert!(total < 100, \"nested assert fires\");
        debug_assert!(total < 100, \"debug_assert never fires\");
        total += xs[i];
    }
    total
}
",
    );
    let report = fx.scan();
    let lines: Vec<usize> = report
        .findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, RuleId::PanicPath, "{f:?}");
            f.line
        })
        .collect();
    // Line 5: the nested assert!. Line 7: the nested indexing. The guard
    // on line 2 and the debug_assert on line 6 stay silent.
    assert_eq!(lines, vec![5, 7], "{:?}", report.findings);
}

#[test]
fn float_sanity_fires_on_ln_one_minus_and_exact_eq_but_not_epsilon() {
    let fx = Fixture::new("float-sanity");
    fx.file(
        "crates/stats/src/lib.rs",
        "\
pub fn bad_tail(p: f64) -> f64 { (1.0 - p).ln() }
pub fn bad_eq(x: f64) -> bool { x == 0.5 }
pub fn good_tail(p: f64) -> f64 { (-p).ln_1p() }
pub fn good_eq(a: f64, b: f64) -> bool { (a - b).abs() < 1e-9 * a.abs().max(b.abs()) }
",
    );
    // Same patterns outside the float-sanity crate scope: silent.
    fx.file("crates/sim/src/lib.rs", "pub fn elsewhere(p: f64) -> f64 { (1.0 - p).ln() }\n");
    let report = fx.scan();
    let lines: Vec<usize> = report
        .findings
        .iter()
        .map(|f| {
            assert_eq!(f.rule, RuleId::FloatSanity, "{f:?}");
            assert_eq!(f.path, "crates/stats/src/lib.rs");
            f.line
        })
        .collect();
    assert_eq!(lines, vec![1, 2], "{:?}", report.findings);
}

#[test]
fn cast_truncation_fires_on_bare_narrowing_but_not_shifts_or_literals() {
    let fx = Fixture::new("cast");
    fx.file(
        "crates/hash/src/lib.rs",
        "\
pub fn bad(x: u64) -> u32 { x as u32 }
pub fn good_shift(x: u64) -> u32 { (x >> 32) as u32 }
pub fn good_literal() -> u32 { 8192u64 as u32 }
pub fn good_widen(x: u32) -> u64 { x as u64 }
",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, RuleId::CastTruncation);
    assert_eq!(report.findings[0].line, 1);
}

#[test]
fn estimator_registry_fires_for_unregistered_impl() {
    let fx = Fixture::new("registry");
    let impl_src = "\
pub struct Phantom;
impl CardinalityEstimator for Phantom {
    fn name(&self) -> &'static str { \"PHANTOM\" }
}
";
    fx.file("crates/baselines/src/lib.rs", impl_src);
    // Registered in the CLI dispatch, but no tests/ file constructs it.
    fx.file(
        "crates/cli/src/commands.rs",
        "pub fn build() -> Phantom { Phantom }\n",
    );
    fx.file("tests/smoke.rs", "#[test]\nfn t() { /* Phantom absent */ }\n");
    fx.file("tests/fault_matrix.rs", "#[test]\nfn m() {}\n");
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::EstimatorRegistry);
    assert_eq!(f.path, "crates/baselines/src/lib.rs");
    assert_eq!(f.line, 2, "points at the impl header");
    assert!(f.message.contains("Phantom"), "{}", f.message);
    assert!(f.message.contains("tests/"), "{}", f.message);
    assert!(f.message.contains("fault matrix"), "{}", f.message);

    // Constructing it in a tests/ file and the fault matrix clears it.
    fx.file("tests/smoke.rs", "#[test]\nfn t() { let _ = Phantom; }\n");
    fx.file(
        "tests/fault_matrix.rs",
        "#[test]\nfn m() { run(Phantom); }\n",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);

    // Dropping the fault-matrix mention re-fires the third leg alone.
    fx.file("tests/fault_matrix.rs", "#[test]\nfn m() {}\n");
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(
        report.findings[0].message.contains("fault matrix"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn estimator_registry_reports_missing_cli_dispatch() {
    let fx = Fixture::new("registry-cli");
    fx.file(
        "crates/baselines/src/lib.rs",
        "pub struct Ghost;\nimpl CardinalityEstimator for Ghost {}\n",
    );
    fx.file("crates/cli/src/commands.rs", "pub fn build() {}\n");
    fx.file("tests/smoke.rs", "#[test]\nfn t() { let _ = Ghost; }\n");
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert!(
        report.findings[0].message.contains("commands.rs"),
        "{}",
        report.findings[0].message
    );
}

#[test]
fn inline_allow_round_trip_suppresses_and_rots_loudly() {
    let fx = Fixture::new("inline-allow");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
// analysis:allow(unwrap): fixture exercises the standalone inline form
pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    assert_eq!(report.suppressed_inline, 1);
    assert_eq!(report.suppressed, 0);

    // The offending code goes away but the allow stays: stale, loudly.
    fx.file(
        "crates/sim/src/lib.rs",
        "\
// analysis:allow(unwrap): fixture exercises the standalone inline form
pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }
",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, RuleId::StaleAllow);
    assert_eq!(report.findings[0].line, 1);
    assert_eq!(report.suppressed_inline, 0);
}

#[test]
fn non_utf8_file_is_a_clean_diagnostic_not_a_panic() {
    let fx = Fixture::new("notutf8");
    fx.file("crates/sim/src/lib.rs", "pub fn ok() {}\n");
    fx.raw("crates/sim/src/blob.rs", b"pub fn x() {}\n\xFF\xFE broken\n");
    let err = scan_workspace(&fx.root).expect_err("non-UTF-8 must fail the scan");
    assert!(matches!(err, Error::NotUtf8(_, _)), "{err:?}");
    let msg = err.to_string();
    assert!(msg.contains("blob.rs"), "names the offending file: {msg}");
    assert!(msg.contains("not valid UTF-8"), "says what is wrong: {msg}");
    assert!(msg.contains("offset 14"), "locates the first bad byte: {msg}");
}

#[test]
fn sarif_output_validates_against_the_2_1_0_skeleton() {
    let fx = Fixture::new("sarif");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1);

    let doc = Value::parse(&render_sarif(&report)).expect("SARIF output is valid JSON");
    assert_eq!(doc.get("$schema").and_then(Value::as_str), Some(SARIF_SCHEMA));
    assert_eq!(doc.get("version").and_then(Value::as_str), Some(SARIF_VERSION));
    let runs = doc.get("runs").and_then(Value::as_arr).expect("runs array");
    assert_eq!(runs.len(), 1);

    let driver = runs[0]
        .get("tool")
        .and_then(|t| t.get("driver"))
        .expect("tool.driver");
    assert_eq!(driver.get("name").and_then(Value::as_str), Some("rfid-analysis"));
    let rules = driver.get("rules").and_then(Value::as_arr).expect("driver.rules");
    assert_eq!(rules.len(), ALL_RULES.len(), "every rule is declared");
    for rule in rules {
        assert!(rule.get("id").and_then(Value::as_str).is_some());
        assert!(rule
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Value::as_str)
            .is_some());
    }

    let results = runs[0].get("results").and_then(Value::as_arr).expect("results");
    assert_eq!(results.len(), 1);
    let result = &results[0];
    assert_eq!(result.get("ruleId").and_then(Value::as_str), Some("unwrap"));
    assert_eq!(result.get("level").and_then(Value::as_str), Some("error"));
    assert!(result
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(Value::as_str)
        .is_some());
    let loc = result.get("locations").and_then(Value::as_arr).expect("locations")[0]
        .get("physicalLocation")
        .expect("physicalLocation");
    let artifact = loc.get("artifactLocation").expect("artifactLocation");
    assert_eq!(
        artifact.get("uri").and_then(Value::as_str),
        Some("crates/sim/src/lib.rs")
    );
    assert_eq!(artifact.get("uriBaseId").and_then(Value::as_str), Some("SRCROOT"));
    assert_eq!(
        loc.get("region").and_then(|r| r.get("startLine")).and_then(Value::as_num),
        Some(1.0)
    );
}

#[test]
fn json_output_carries_the_full_report() {
    let fx = Fixture::new("json-out");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    let doc = Value::parse(&render_json(&report)).expect("JSON output parses");
    assert_eq!(doc.get("tool").and_then(Value::as_str), Some("rfid-analysis"));
    assert_eq!(doc.get("clean"), Some(&Value::Bool(false)));
    assert_eq!(doc.get("files_scanned").and_then(Value::as_num), Some(1.0));
    let findings = doc.get("findings").and_then(Value::as_arr).expect("findings");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].get("rule").and_then(Value::as_str), Some("unwrap"));
}

#[test]
fn airtime_conservation_catches_a_seeded_uncharged_collector() {
    // The acceptance fixture for the effect engine: a collector reachable
    // from RfidSystem that senses slots but never touches a `*_BITS`
    // constant or the AirTimeLedger must fire; charging through a ledger
    // primitive (even indirectly) clears it.
    let fx = Fixture::new("airtime");
    fx.file("crates/sim/src/lib.rs", "pub mod system;\n");
    fx.file(
        "crates/sim/src/system.rs",
        "\
pub struct AirTimeLedger { bits: u64 }
impl AirTimeLedger { pub fn tag_responses(&mut self, n: u64) { self.bits = self.bits + n; } }
pub struct RfidSystem { ledger: AirTimeLedger }
impl RfidSystem {
    pub fn estimate(&mut self, w: usize) -> usize { self.run_rogue_frame(w) }
    pub fn run_rogue_frame(&mut self, w: usize) -> usize {
        let mut hits = 0usize;
        for s in 0..w { if s % 3 == 0 { hits = hits + 1; } }
        hits
    }
}
",
    );
    let report = fx.scan();
    let hits: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::AirtimeConservation)
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", report.findings);
    assert_eq!(hits[0].path, "crates/sim/src/system.rs");
    assert_eq!(hits[0].line, 6, "points at the collector's fn header");
    assert!(hits[0].message.contains("run_rogue_frame"), "{}", hits[0].message);
    assert!(
        hits[0].message.contains("no air-time charging site"),
        "{}",
        hits[0].message
    );

    // Charging the ledger inside the collector clears the finding.
    fx.file(
        "crates/sim/src/system.rs",
        "\
pub struct AirTimeLedger { bits: u64 }
impl AirTimeLedger { pub fn tag_responses(&mut self, n: u64) { self.bits = self.bits + n; } }
pub struct RfidSystem { ledger: AirTimeLedger }
impl RfidSystem {
    pub fn estimate(&mut self, w: usize) -> usize { self.run_rogue_frame(w) }
    pub fn run_rogue_frame(&mut self, w: usize) -> usize {
        self.ledger.tag_responses(w as u64);
        w
    }
}
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn hotpath_rules_fire_on_unguarded_panic_and_alloc_below_kernel_roots() {
    // A helper reachable from the `response_fill_dispatched` kernel root
    // allocates and can panic inside its slot loop; both effect rules must
    // point at the seed sites in the helper, not the root.
    let fx = Fixture::new("hotpath");
    fx.file(
        "crates/sim/src/lib.rs",
        "\
pub fn response_fill_dispatched(xs: &[u32], w: usize) -> u32 {
    helper(xs, w)
}
fn helper(xs: &[u32], w: usize) -> u32 {
    let mut total = 0u32;
    for i in 0..w {
        let scratch = vec![0u8; 4];
        total = total + xs.get(i).copied().unwrap() + scratch[3] as u32;
    }
    total
}
",
    );
    let report = fx.scan();
    let panics: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::HotpathPanicFree)
        .collect();
    let allocs: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::HotpathAllocFree)
        .collect();
    assert_eq!(allocs.len(), 1, "{:?}", report.findings);
    assert_eq!((allocs[0].path.as_str(), allocs[0].line), ("crates/sim/src/lib.rs", 7));
    assert!(allocs[0].message.contains("helper"), "{}", allocs[0].message);
    assert_eq!(panics.len(), 1, "{:?}", report.findings);
    assert_eq!((panics[0].path.as_str(), panics[0].line), ("crates/sim/src/lib.rs", 8));
    assert!(
        panics[0].message.contains("frame-fill hot loop"),
        "{}",
        panics[0].message
    );
}

#[test]
fn snapshot_surface_fires_for_stateful_estimator_and_clears_with_exporter() {
    let fx = Fixture::new("snapshot-surface");
    fx.file(
        "crates/baselines/src/lib.rs",
        "\
pub struct Lingering { registers: u64 }
impl CardinalityEstimator for Lingering {
    fn name(&self) -> &'static str { \"LINGER\" }
}
",
    );
    // Satisfy the estimator-registry legs so the only finding left is the
    // missing snapshot surface.
    fx.file(
        "crates/cli/src/commands.rs",
        "pub fn build() -> Lingering { Lingering { registers: 0 } }\n",
    );
    fx.file(
        "tests/smoke.rs",
        "#[test]\nfn t() { let _ = Lingering { registers: 0 }; }\n",
    );
    fx.file(
        "tests/fault_matrix.rs",
        "#[test]\nfn m() { run(Lingering { registers: 0 }); }\n",
    );
    let report = fx.scan();
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, RuleId::SnapshotSurface);
    assert_eq!((f.path.as_str(), f.line), ("crates/baselines/src/lib.rs", 2));
    assert!(f.message.contains("Lingering"), "{}", f.message);
    assert!(f.message.contains("snapshot surface"), "{}", f.message);

    // An inherent `sketch` exporter is the evidence the rule asks for.
    fx.file(
        "crates/baselines/src/lib.rs",
        "\
pub struct Lingering { registers: u64 }
impl CardinalityEstimator for Lingering {
    fn name(&self) -> &'static str { \"LINGER\" }
}
impl Lingering {
    pub fn sketch(&self) -> u64 { self.registers }
}
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
}

#[test]
fn effects_json_rides_the_report_and_carries_interprocedural_summaries() {
    // The `rfid-effects/v1` dump embedded in `--format json` (and printed
    // by `--dump-effects`) must carry the fixpoint: `outer` allocates only
    // through `inner`, so its direct set is empty but its summary is not.
    let fx = Fixture::new("effects-json");
    fx.file(
        "crates/workloads/src/lib.rs",
        "\
pub fn outer(n: usize) -> Vec<u64> { inner(n) }
fn inner(n: usize) -> Vec<u64> { vec![0u64; n] }
",
    );
    let report = fx.scan();
    assert!(report.is_clean(), "{:?}", report.findings);
    let doc = Value::parse(&render_json(&report)).expect("JSON output parses");
    let effects = doc.get("effects").expect("effects object rides along");
    assert_eq!(
        effects.get("schema").and_then(Value::as_str),
        Some("rfid-effects/v1")
    );
    let fns = effects.get("fns").and_then(Value::as_arr).expect("fns array");
    let row = |name: &str| {
        fns.iter()
            .find(|f| f.get("name").and_then(Value::as_str) == Some(name))
            .unwrap_or_else(|| panic!("fn `{name}` missing from {fns:?}"))
    };
    let names = |v: &Value, key: &str| -> Vec<String> {
        v.get(key)
            .and_then(Value::as_arr)
            .expect("effect list")
            .iter()
            .map(|e| e.as_str().expect("effect name").to_string())
            .collect()
    };
    let inner = row("inner");
    assert_eq!(names(inner, "direct"), vec!["allocates"]);
    assert_eq!(names(inner, "summary"), vec!["allocates"]);
    let outer = row("outer");
    assert_eq!(names(outer, "direct"), Vec::<String>::new());
    assert_eq!(
        names(outer, "summary"),
        vec!["allocates"],
        "the callee's allocation must propagate into the caller's summary"
    );
    let crates = effects.get("crates").expect("crates object");
    assert_eq!(
        crates.get("workloads").and_then(Value::as_num),
        Some(2.0),
        "both fns carry a non-empty summary"
    );
}

#[test]
fn findings_are_sorted_by_path_then_line() {
    let fx = Fixture::new("sorted");
    fx.file(
        "crates/sim/src/lib.rs",
        "pub fn a(x: Option<u32>) -> u32 { x.unwrap() }\npub fn b(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    fx.file(
        "crates/hash/src/lib.rs",
        "pub fn c(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let report = fx.scan();
    let keys: Vec<(String, usize)> = report
        .findings
        .iter()
        .map(|f| (f.path.clone(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    assert_eq!(keys.len(), 3);
}
