//! Implementation of the `rfid` command-line tool.
//!
//! Subcommands:
//!
//! * `estimate` — one estimation run with any protocol in the workspace;
//! * `compare`  — several protocols on the same population, side by side;
//! * `trace`    — the event-level air schedule of one BFCE run;
//! * `workload` — dump a generated tag-ID set;
//! * `robustness` — estimator accuracy under injected faults;
//! * `snapshot` — per-reader `rfid-sketch/v1` snapshot files from a
//!   simulated multi-reader deployment;
//! * `merge`    — fold snapshot files into one union estimate;
//! * `info`     — the paper's headline numbers for the current config.
//!
//! The argument parser is deliberately dependency-free (`--key value`
//! pairs after a subcommand) and lives here, in the library, so it is unit
//! tested like everything else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod fuzz;

pub use args::{parse, Command, ParseError};

/// Run a parsed command, writing human-readable output to `out`.
pub fn run(cmd: &Command, out: &mut dyn std::io::Write) -> std::io::Result<()> {
    match cmd {
        Command::Estimate(opts) => commands::estimate(opts, out),
        Command::Compare(opts) => commands::compare(opts, out),
        Command::Trace(opts) => commands::trace(opts, out),
        Command::Workload(opts) => commands::workload(opts, out),
        Command::Diff(opts) => commands::diff(opts, out),
        Command::Robustness(opts) => commands::robustness(opts, out),
        Command::Snapshot(opts) => commands::snapshot(opts, out),
        Command::Merge(opts) => commands::merge(opts, out),
        Command::Info => commands::info(out),
        Command::Help => {
            write!(out, "{}", args::USAGE)
        }
    }
}
