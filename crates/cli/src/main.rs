//! The `rfid` binary: thin wrapper over [`rfid_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match rfid_cli::parse(&args) {
        Ok(cmd) => {
            if let Err(e) = rfid_cli::run(&cmd, &mut out) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", rfid_cli::args::USAGE);
            std::process::exit(2);
        }
    }
}
