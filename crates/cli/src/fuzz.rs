//! Must-not-panic fuzz body for the `rfid` argument parser.
//!
//! Mirrors the pattern of `rfid_analysis::fuzz_surface` and
//! `rfid_bfce::sketch::fuzz`: the out-of-tree cargo-fuzz target
//! `fuzz/fuzz_targets/cli_args.rs` wraps [`cli_args`], and the in-tree
//! `crates/cli/tests/fuzz_smoke.rs` replays the seed corpus plus
//! deterministic mutations on every `cargo test`.
//!
//! The parser is the first thing untrusted input touches (`rfid` is a
//! shipped binary), so the invariant is strict: for *any* argument
//! vector, [`parse`](crate::args::parse) returns a command or a
//! [`ParseError`](crate::args::ParseError) that renders a non-empty
//! message — it never panics, whatever the flag soup.

use crate::args::parse;

/// Fuzz body: split the bytes into an argument vector two ways (words and
/// lines — the latter keeps spaces inside one argument, which a shell can
/// always produce) and drive the parser with both.
pub fn cli_args(data: &[u8]) {
    let text = String::from_utf8_lossy(data);
    let words: Vec<String> = text.split_whitespace().map(str::to_string).collect();
    let lines: Vec<String> = text
        .lines()
        .map(str::to_string)
        .filter(|l| !l.is_empty())
        .collect();
    for argv in [words, lines] {
        if let Err(err) = parse(&argv) {
            let msg = err.to_string();
            assert!(
                !msg.is_empty(),
                "parse errors must render a usable message"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_and_rejects_without_panicking() {
        cli_args(b"");
        cli_args(b"estimate --n 1000 --rounds 2");
        cli_args(b"merge --inputs a.sketch,b.sketch --truth abc");
        cli_args(b"--n\n1000\nestimate");
        cli_args(&[0xFF, 0xFE, b' ', 0x00, b'-', b'-']);
    }
}
