//! Subcommand implementations.

use crate::args::{
    CompareOpts, EstimateOpts, MergeOpts, RobustnessOpts, SnapshotOpts, WorkloadOpts,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_baselines::{
    Art, Ezb, Fneb, HllPp, Lof, LogLogBeta, Mle, Pet, QInventory, Src, Upe, Zoe, A3,
};
use rfid_experiments::robustness::FaultClass;
use rfid_experiments::TrialRunner;
use rfid_bfce::overhead::{nominal_total_seconds, total_bit_slots};
use rfid_bfce::theory::{gamma_bounds, max_cardinality};
use rfid_bfce::{AnySnapshot, Bfce, BfceConfig, BloomPlan, BloomSketch, Snapshot};
use rfid_sim::trace::{aggregate, render};
use rfid_sim::{
    Accuracy, BitErrorChannel, CardinalityEstimator, MultiReaderDeployment, RfidSystem,
    Timing,
};
use std::io::Write;

/// Every estimator name [`make_estimator`] accepts, in `rfid help` order.
///
/// This is the single registry the test suite derives estimator coverage
/// from; adding an estimator here without wiring it into
/// [`make_estimator`] fails the `factory_knows_every_estimator` test.
pub const ESTIMATOR_NAMES: [&str; 14] = [
    "bfce", "zoe", "src", "lof", "upe", "ezb", "fneb", "art", "mle", "pet", "a3",
    "inventory", "hllpp", "llbeta",
];

/// Build an estimator by CLI name.
pub fn make_estimator(name: &str) -> Option<Box<dyn CardinalityEstimator>> {
    match name.to_ascii_lowercase().as_str() {
        "bfce" => Some(Box::new(Bfce::paper())),
        "zoe" => Some(Box::new(Zoe::default())),
        "src" => Some(Box::new(Src::default())),
        "lof" => Some(Box::new(Lof::default())),
        "upe" => Some(Box::new(Upe::default())),
        "ezb" => Some(Box::new(Ezb::default())),
        "fneb" => Some(Box::new(Fneb::default())),
        "art" => Some(Box::new(Art::default())),
        "mle" => Some(Box::new(Mle::default())),
        "pet" => Some(Box::new(Pet::default())),
        "a3" => Some(Box::new(A3::default())),
        "inventory" => Some(Box::new(QInventory::default())),
        "hllpp" => Some(Box::new(HllPp::default())),
        "llbeta" => Some(Box::new(LogLogBeta::default())),
        _ => None,
    }
}

/// Every registered estimator, boxed, in [`ESTIMATOR_NAMES`] order.
pub fn all_estimators() -> Vec<Box<dyn CardinalityEstimator>> {
    ESTIMATOR_NAMES
        .iter()
        .map(|name| {
            // analysis:allow(unwrap): ESTIMATOR_NAMES is the factory's own key list; a miss is a compile-adjacent registry bug caught by every test
            make_estimator(name).expect("registry name missing from factory")
        })
        .collect()
}

fn build_system(opts: &EstimateOpts, seed: u64) -> RfidSystem {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let population = opts.workload.generate(opts.n, &mut rng);
    if opts.ber > 0.0 {
        let mut system = RfidSystem::with_channel(
            population,
            Box::new(BitErrorChannel::new(opts.ber)),
        );
        system.set_noise_seed(seed);
        system
    } else {
        RfidSystem::new(population)
    }
}

fn invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidInput, msg)
}

/// `rfid estimate`.
pub fn estimate(opts: &EstimateOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let est = make_estimator(&opts.estimator)
        .ok_or_else(|| invalid(format!("unknown estimator '{}'", opts.estimator)))?;
    let accuracy = Accuracy::new(opts.epsilon, opts.delta);
    writeln!(
        out,
        "{} on {} tags ({}), requirement ({}, {}), channel {}",
        est.name(),
        opts.n,
        opts.workload.name(),
        opts.epsilon,
        opts.delta,
        if opts.ber > 0.0 { "bit-error" } else { "perfect" },
    )?;
    // Trials fan out across the engine's worker pool (`--jobs`); per-trial
    // seeds are stream-split from `--seed`, and results come back in trial
    // order, so the output is identical at any worker count.
    let reports = TrialRunner::new(opts.rounds, opts.seed)
        .jobs(opts.jobs)
        .map(|ctx| {
            let mut system = build_system(opts, ctx.seed);
            system.set_frame_min_chunk(ctx.frame_min_chunk);
            let mut rng = ctx.rng();
            est.estimate(&mut system, accuracy, &mut rng)
        });
    for (round, report) in reports.iter().enumerate() {
        writeln!(
            out,
            "round {:>2}: n_hat = {:>12.1}  rel_err = {:.4}  air = {:.4}s  \
             (reader {} bits, {} slots, {} tag tx)",
            round + 1,
            report.n_hat,
            report.relative_error(opts.n.max(1)),
            report.air.total_seconds(),
            report.air.reader_bits,
            report.air.bitslots + report.air.aloha_slots,
            report.air.tag_responses,
        )?;
        for warning in &report.warnings {
            writeln!(out, "  warning: {warning}")?;
        }
    }
    if opts.rounds > 1 {
        let errs: Vec<f64> = reports
            .iter()
            .map(|r| r.relative_error(opts.n.max(1)))
            .collect();
        let secs: Vec<f64> = reports.iter().map(|r| r.air.total_seconds()).collect();
        writeln!(
            out,
            "summary : {} trials  mean_err = {:.4}  p95_err = {:.4}  \
             mean_air = {:.4}s  p95_air = {:.4}s",
            opts.rounds,
            rfid_stats::mean(&errs),
            rfid_stats::percentile(&errs, 95.0),
            rfid_stats::mean(&secs),
            rfid_stats::percentile(&secs, 95.0),
        )?;
    }
    Ok(())
}

/// `rfid compare`.
pub fn compare(opts: &CompareOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let accuracy = Accuracy::new(opts.base.epsilon, opts.base.delta);
    writeln!(
        out,
        "{:<10} {:>12} {:>9} {:>10} {:>12}",
        "estimator", "n_hat", "rel_err", "air_s", "tag_tx"
    )?;
    for name in &opts.estimators {
        let est = make_estimator(name)
            .ok_or_else(|| invalid(format!("unknown estimator '{name}'")))?;
        let mut system = build_system(&opts.base, opts.base.seed);
        let mut rng = StdRng::seed_from_u64(opts.base.seed);
        let report = est.estimate(&mut system, accuracy, &mut rng);
        writeln!(
            out,
            "{:<10} {:>12.1} {:>9.4} {:>10.4} {:>12}",
            est.name(),
            report.n_hat,
            report.relative_error(opts.base.n.max(1)),
            report.air.total_seconds(),
            report.air.tag_responses,
        )?;
    }
    Ok(())
}

/// `rfid trace` — BFCE with the event recorder on.
pub fn trace(opts: &EstimateOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let mut system = build_system(opts, opts.seed);
    system.enable_trace();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let bfce = Bfce::paper();
    let run = bfce.run(
        &mut system,
        Accuracy::new(opts.epsilon, opts.delta),
        &mut rng,
    );
    let Some(events) = system.protocol_trace() else {
        return Err(std::io::Error::other(
            "protocol trace missing after enable_trace",
        ));
    };
    writeln!(
        out,
        "BFCE on {} tags: n_hat = {:.1} in {:.4}s\n",
        opts.n,
        run.n_hat(),
        run.report.air.total_seconds()
    )?;
    write!(out, "{}", render(events))?;
    writeln!(out, "\nby kind:")?;
    for (kind, count, total_us) in aggregate(events) {
        writeln!(out, "  {kind:<11} x{count:<6} {total_us:>12.2}us")?;
    }
    Ok(())
}

/// `rfid workload` — print the generated IDs.
pub fn workload(opts: &WorkloadOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let population = opts.spec.generate(opts.n, &mut rng);
    writeln!(out, "# {} IDs from {}", opts.n, opts.spec.name())?;
    writeln!(out, "id,rn")?;
    for tag in population.tags() {
        writeln!(out, "{},{}", tag.id, tag.rn)?;
    }
    Ok(())
}

/// `rfid diff` — two-epoch differential estimation (same-seed frames).
pub fn diff(opts: &crate::args::DiffOpts, out: &mut dyn Write) -> std::io::Result<()> {
    use rfid_sim::{Tag, TagPopulation};
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let epoch1 = rfid_workloads::WorkloadSpec::T1.generate(opts.n, &mut rng);
    let mut epoch2: Vec<Tag> = epoch1.tags()[opts.departed..].to_vec();
    let arrivals = rfid_workloads::WorkloadSpec::T1.generate(opts.arrived, &mut rng);
    epoch2.extend_from_slice(arrivals.tags());

    let mut before = RfidSystem::new(epoch1);
    let mut after = RfidSystem::new(TagPopulation::new(epoch2));
    let p_n = ((8192.0f64 / (3.0 * opts.n.max(1) as f64) * 1024.0).round() as u32)
        .clamp(1, 1023);
    let result = rfid_bfce::diff::estimate_changes(
        &BfceConfig::paper(),
        &mut before,
        &mut after,
        p_n,
        &mut rng,
    );
    writeln!(
        out,
        "epoch 1: {} tags; true departed {}, true arrived {}",
        opts.n, opts.departed, opts.arrived
    )?;
    writeln!(
        out,
        "estimated departures: {:.1}   estimated arrivals: {:.1}   (p = {p_n}/1024)",
        result.departures, result.arrivals
    )?;
    writeln!(
        out,
        "air time: {:.4}s + {:.4}s (two same-seed frames)",
        before.air_time().total_seconds(),
        after.air_time().total_seconds()
    )?;
    for w in &result.warnings {
        writeln!(out, "warning: {w}")?;
    }
    Ok(())
}

/// `rfid robustness` — fault intensity x estimator sweep.
///
/// Every `(class, intensity, estimator)` cell fans its trials out through
/// [`TrialRunner`], with the fault schedule seeded per trial, so the
/// printed table is identical at any `--jobs` setting.
pub fn robustness(opts: &RobustnessOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let classes: Vec<FaultClass> = if opts.classes.is_empty() {
        FaultClass::all().to_vec()
    } else {
        opts.classes
            .iter()
            .map(|name| {
                FaultClass::parse(name)
                    .ok_or_else(|| invalid(format!("unknown fault class '{name}'")))
            })
            .collect::<Result<_, _>>()?
    };
    let estimators = opts
        .estimators
        .iter()
        .map(|name| {
            make_estimator(name).ok_or_else(|| invalid(format!("unknown estimator '{name}'")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let accuracy = Accuracy::new(opts.epsilon, opts.delta);
    writeln!(
        out,
        "robustness sweep: n = {}, {} trials per cell, requirement ({}, {})",
        opts.n, opts.trials, opts.epsilon, opts.delta
    )?;
    writeln!(
        out,
        "{:<14} {:>9} {:<10} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "class", "intensity", "estimator", "mean_err", "max_err", "degraded", "eps_eff", "retries"
    )?;
    for (class_idx, class) in classes.iter().enumerate() {
        for (lambda_idx, &lambda) in opts.intensities.iter().enumerate() {
            for (est_idx, est) in estimators.iter().enumerate() {
                let cell = (class_idx as u64) << 16
                    | (lambda_idx as u64) << 8
                    | est_idx as u64;
                let outcomes = TrialRunner::new(
                    opts.trials,
                    rfid_hash::stream_seed(opts.seed, cell),
                )
                .jobs(opts.jobs)
                .map(|ctx| {
                    let mut system = class.build_system(opts.n, lambda, ctx.seed);
                    system.set_noise_seed(ctx.seed);
                    system.set_frame_min_chunk(ctx.frame_min_chunk);
                    let mut rng = ctx.rng();
                    let report = est.estimate(&mut system, accuracy, &mut rng);
                    let quality = system.quality();
                    (
                        report.relative_error(opts.n.max(1)),
                        quality.degraded(),
                        quality.widened(accuracy).epsilon,
                        quality.retries,
                    )
                });
                let trials = outcomes.len() as f64;
                let mean_err = outcomes.iter().map(|o| o.0).sum::<f64>() / trials;
                let max_err = outcomes.iter().map(|o| o.0).fold(0.0, f64::max);
                let degraded =
                    outcomes.iter().filter(|o| o.1).count() as f64 / trials;
                let eps_eff = outcomes.iter().map(|o| o.2).sum::<f64>() / trials;
                let retries =
                    outcomes.iter().map(|o| o.3 as f64).sum::<f64>() / trials;
                writeln!(
                    out,
                    "{:<14} {:>9.2} {:<10} {:>9.4} {:>9.4} {:>9.2} {:>9.4} {:>8.1}",
                    class.name(),
                    lambda,
                    est.name(),
                    mean_err,
                    max_err,
                    degraded,
                    eps_eff,
                    retries,
                )?;
            }
        }
    }
    Ok(())
}

/// Split `tags` into per-reader coverages: even contiguous chunks, each
/// reader also covering an `overlap` fraction of the next reader's chunk
/// (wrapping), so shared tags exercise the de-duplicating merge.
fn coverage_split(
    tags: &[rfid_sim::Tag],
    readers: usize,
    overlap: f64,
) -> Vec<Vec<rfid_sim::Tag>> {
    let bounds: Vec<usize> = (0..=readers).map(|i| i * tags.len() / readers).collect();
    (0..readers)
        .map(|i| {
            let mut coverage = tags[bounds[i]..bounds[i + 1]].to_vec();
            if readers > 1 {
                let next = (i + 1) % readers;
                let next_chunk = &tags[bounds[next]..bounds[next + 1]];
                let shared = (overlap * next_chunk.len() as f64) as usize;
                coverage.extend_from_slice(&next_chunk[..shared]);
            }
            coverage
        })
        .collect()
}

/// Serialize one reader's sketch of its own coverage, air time charged to
/// that reader's system. All readers use the same broadcast seed(s), which
/// is what makes the snapshots mergeable.
fn collect_snapshot(
    sketch: &str,
    system: &mut RfidSystem,
    base_seed: u64,
) -> std::io::Result<Vec<u8>> {
    let shared = rfid_hash::stream_seed(base_seed, 0x534B_4554) as u32;
    match sketch {
        "hllpp" => Ok(HllPp::default().sketch(system, shared).snapshot()),
        "llbeta" => Ok(LogLogBeta::default().sketch(system, shared).snapshot()),
        "bloom" => {
            let cfg = BfceConfig::paper();
            let seeds: Vec<u32> = (0..cfg.k)
                .map(|j| rfid_hash::stream_seed(base_seed, j as u64 + 1) as u32)
                .collect();
            // The same load-matched persistence the diff pipeline uses:
            // p ~ w / (k n), quantized to the paper's 1/1024 grid.
            let n = system.true_cardinality().max(1);
            let p_n = ((cfg.w as f64 / (cfg.k as f64 * n as f64) * 1024.0).round()
                as u32)
                .clamp(1, 1023);
            let plan = BloomPlan::new(&cfg, &seeds, p_n);
            let frame = system.run_bitslot_frame(cfg.w, &plan);
            Ok(BloomSketch::from_frame(&cfg, &frame, &seeds, p_n).snapshot())
        }
        other => Err(invalid(format!("unknown sketch '{other}'"))),
    }
}

/// `rfid snapshot` — simulate a multi-reader deployment and write one
/// `rfid-sketch/v1` snapshot file per physical reader.
///
/// Note the per-reader persistence caveat for `--sketch bloom`: each
/// reader load-matches `p` to its *own* coverage, so bloom snapshots only
/// merge when the readers see similar loads (same-size coverages). The
/// register sketches (`hllpp`, `llbeta`) have no such coupling.
pub fn snapshot(opts: &SnapshotOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0x9E37_79B9_7F4A_7C15);
    let population = opts.workload.generate(opts.n, &mut rng);

    let mut deployment = MultiReaderDeployment::new();
    for coverage in coverage_split(population.tags(), opts.readers, opts.overlap) {
        deployment.add_reader(coverage);
    }
    let truth = deployment
        .logical_population()
        .map_err(|e| invalid(e.to_string()))?
        .cardinality();
    writeln!(
        out,
        "{} deployment: {} readers over {} tags (union {}, overlap {})",
        opts.sketch, opts.readers, opts.n, truth, opts.overlap
    )?;

    for reader in 0..opts.readers {
        let mut system = deployment
            .reader_system(reader)
            .map_err(|e| invalid(e.to_string()))?;
        let bytes = collect_snapshot(&opts.sketch, &mut system, opts.seed)?;
        let path = format!("{}.reader{}.sketch", opts.out, reader);
        std::fs::write(&path, &bytes)?;
        writeln!(
            out,
            "reader {:>2}: {:>8} tags  {:>8} bytes  {:.4}s air  -> {}",
            reader,
            system.true_cardinality(),
            bytes.len(),
            system.air_time().total_seconds(),
            path,
        )?;
    }
    writeln!(
        out,
        "merge with: rfid merge --inputs {} --truth {truth}",
        (0..opts.readers)
            .map(|r| format!("{}.reader{r}.sketch", opts.out))
            .collect::<Vec<_>>()
            .join(","),
    )?;
    Ok(())
}

/// `rfid merge` — fold per-reader snapshot files into one estimate.
///
/// Every input is decoded on its own before the fold starts, so a
/// corrupted or truncated `.sketch` surfaces as `<path>: <wire error>` —
/// the typed [`WireError`] rendering, offset and variant included — and
/// the command exits 1 without blaming the merge step (or a different
/// file) for a decode failure.
///
/// [`WireError`]: rfid_bfce::WireError
pub fn merge(opts: &MergeOpts, out: &mut dyn Write) -> std::io::Result<()> {
    let mut decoded: Vec<AnySnapshot> = Vec::with_capacity(opts.inputs.len());
    for path in &opts.inputs {
        let bytes = std::fs::read(path).map_err(|e| {
            std::io::Error::new(e.kind(), format!("{path}: {e}"))
        })?;
        let snapshot =
            AnySnapshot::decode(&bytes).map_err(|e| invalid(format!("{path}: {e}")))?;
        decoded.push(snapshot);
    }
    let mut inputs = opts.inputs.iter().zip(decoded);
    let Some((_, mut merged)) = inputs.next() else {
        return Err(invalid("no snapshot inputs to merge".to_string()));
    };
    for (path, snapshot) in inputs {
        merged
            .merge(&snapshot)
            .map_err(|e| invalid(format!("{path}: {e}")))?;
    }
    write!(
        out,
        "merged {} snapshots ({}): n_hat = {:.1}",
        opts.inputs.len(),
        merged.kind().name(),
        merged.estimate(),
    )?;
    if let Some(truth) = opts.truth {
        let rel = (merged.estimate() - truth as f64).abs() / truth.max(1) as f64;
        write!(out, "  rel_err = {rel:.4} (truth {truth})")?;
    }
    writeln!(out)?;
    Ok(())
}

/// `rfid info` — the paper's headline numbers.
pub fn info(out: &mut dyn Write) -> std::io::Result<()> {
    let cfg = BfceConfig::paper();
    let timing = Timing::c1g2();
    let (gmin, gmax) = gamma_bounds(cfg.k, 1024);
    writeln!(out, "BFCE (ICPP 2015) — paper configuration")?;
    writeln!(out, "  w = {}, k = {}, c = {}", cfg.w, cfg.k, cfg.c)?;
    writeln!(out, "  bit-slot budget : {} (constant)", total_bit_slots(&cfg))?;
    writeln!(
        out,
        "  nominal air time: {:.4} s (< 0.19 s)",
        nominal_total_seconds(&timing, &cfg)
    )?;
    writeln!(out, "  gamma bounds    : {gmin:.6} .. {gmax:.1}")?;
    writeln!(
        out,
        "  max cardinality : {:.0}",
        max_cardinality(cfg.w, cfg.k, 1024)
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{CompareOpts, EstimateOpts, RobustnessOpts, WorkloadOpts};
    use rfid_workloads::WorkloadSpec;

    fn capture(f: impl FnOnce(&mut dyn Write) -> std::io::Result<()>) -> String {
        let mut buf = Vec::new();
        f(&mut buf).expect("command failed");
        String::from_utf8(buf).expect("utf8")
    }

    #[test]
    fn factory_knows_every_estimator() {
        for name in ESTIMATOR_NAMES {
            assert!(make_estimator(name).is_some(), "{name}");
        }
        assert!(make_estimator("BFCE").is_some(), "case-insensitive");
        assert!(make_estimator("nope").is_none());
    }

    #[test]
    fn registry_is_the_single_source_of_truth() {
        let estimators = all_estimators();
        assert_eq!(estimators.len(), ESTIMATOR_NAMES.len());
        // Display names are distinct, so `compare` rows are unambiguous.
        let mut names: Vec<&str> = estimators.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ESTIMATOR_NAMES.len());
        // The help text advertises every registered name.
        for name in ESTIMATOR_NAMES {
            assert!(crate::args::USAGE.contains(name), "{name} missing from USAGE");
        }
    }

    #[test]
    fn estimate_command_produces_rounds() {
        let opts = EstimateOpts {
            n: 5_000,
            rounds: 2,
            ..EstimateOpts::default()
        };
        let s = capture(|out| estimate(&opts, out));
        assert!(s.contains("round  1"));
        assert!(s.contains("round  2"));
        assert!(s.contains("BFCE"));
    }

    #[test]
    fn estimate_output_is_identical_at_any_job_count() {
        // Per-trial seeds and trial-ordered output make the worker count
        // invisible in the results.
        let mk = |jobs| EstimateOpts {
            n: 5_000,
            rounds: 3,
            jobs,
            ..EstimateOpts::default()
        };
        let lone = capture(|out| estimate(&mk(1), out));
        let pooled = capture(|out| estimate(&mk(3), out));
        assert_eq!(lone, pooled);
        assert!(lone.contains("summary : 3 trials"));
    }

    #[test]
    fn estimate_rejects_unknown_estimator() {
        let opts = EstimateOpts {
            estimator: "bogus".into(),
            ..EstimateOpts::default()
        };
        let mut buf = Vec::new();
        assert!(estimate(&opts, &mut buf).is_err());
    }

    #[test]
    fn compare_lists_each_estimator_once() {
        let opts = CompareOpts {
            base: EstimateOpts {
                n: 3_000,
                ..EstimateOpts::default()
            },
            estimators: vec!["bfce".into(), "ezb".into()],
        };
        let s = capture(|out| compare(&opts, out));
        assert_eq!(s.matches("BFCE").count(), 1);
        assert_eq!(s.matches("EZB").count(), 1);
    }

    #[test]
    fn trace_prints_schedule_and_aggregate() {
        let opts = EstimateOpts {
            n: 2_000,
            ..EstimateOpts::default()
        };
        let s = capture(|out| trace(&opts, out));
        assert!(s.contains("bit-slots"));
        assert!(s.contains("by kind:"));
        assert!(s.contains("8192 slots"));
    }

    #[test]
    fn workload_emits_csv_rows() {
        let opts = WorkloadOpts {
            spec: WorkloadSpec::Sequential,
            n: 4,
            seed: 1,
        };
        let s = capture(|out| workload(&opts, out));
        assert_eq!(s.lines().count(), 2 + 4);
        assert!(s.starts_with("# 4 IDs from sequential"));
    }

    #[test]
    fn diff_command_reports_both_directions() {
        let opts = crate::args::DiffOpts {
            n: 40_000,
            departed: 4_000,
            arrived: 2_000,
            seed: 3,
        };
        let s = capture(|out| diff(&opts, out));
        assert!(s.contains("true departed 4000"));
        assert!(s.contains("estimated departures"));
        // Pull the two estimates out and sanity-check them.
        let line = s
            .lines()
            .find(|l| l.starts_with("estimated departures"))
            .unwrap();
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|t| t.parse().ok())
            .collect();
        assert!((nums[0] - 4_000.0).abs() / 4_000.0 < 0.3, "{line}");
        assert!((nums[1] - 2_000.0).abs() / 2_000.0 < 0.4, "{line}");
    }

    #[test]
    fn robustness_command_prints_every_cell() {
        let opts = RobustnessOpts {
            n: 2_000,
            classes: vec!["abort".into(), "capture".into()],
            intensities: vec![0.5],
            estimators: vec!["bfce".into(), "zoe".into()],
            trials: 1,
            ..RobustnessOpts::default()
        };
        let s = capture(|out| robustness(&opts, out));
        assert_eq!(s.matches("abort").count(), 2);
        assert_eq!(s.matches("capture").count(), 2);
        assert!(s.contains("degraded"));
    }

    #[test]
    fn robustness_output_is_identical_at_any_job_count() {
        let mk = |jobs| RobustnessOpts {
            n: 2_000,
            classes: vec!["abort".into(), "dropout".into()],
            intensities: vec![0.75],
            estimators: vec!["bfce".into()],
            trials: 3,
            jobs,
            ..RobustnessOpts::default()
        };
        let lone = capture(|out| robustness(&mk(1), out));
        let pooled = capture(|out| robustness(&mk(3), out));
        assert_eq!(lone, pooled);
    }

    #[test]
    fn robustness_rejects_unknown_names() {
        let mut buf = Vec::new();
        let opts = RobustnessOpts {
            classes: vec!["gremlins".into()],
            ..RobustnessOpts::default()
        };
        assert!(robustness(&opts, &mut buf).is_err());
        let opts = RobustnessOpts {
            estimators: vec!["bogus".into()],
            ..RobustnessOpts::default()
        };
        assert!(robustness(&opts, &mut buf).is_err());
    }

    fn snapshot_opts(prefix: &str, sketch: &str, n: usize, readers: usize) -> SnapshotOpts {
        SnapshotOpts {
            n,
            sketch: sketch.into(),
            readers,
            out: std::env::temp_dir()
                .join(format!("rfid-cli-{prefix}-{}", std::process::id()))
                .display()
                .to_string(),
            ..SnapshotOpts::default()
        }
    }

    fn snapshot_paths(opts: &SnapshotOpts) -> Vec<String> {
        (0..opts.readers)
            .map(|r| format!("{}.reader{r}.sketch", opts.out))
            .collect()
    }

    fn remove_snapshots(opts: &SnapshotOpts) {
        for path in snapshot_paths(opts) {
            let _ = std::fs::remove_file(path);
        }
    }

    fn merged_n_hat(output: &str) -> f64 {
        let tail = output.split("n_hat = ").nth(1).expect("n_hat in output");
        tail.split_whitespace().next().unwrap().parse().expect("numeric n_hat")
    }

    #[test]
    fn snapshot_then_merge_recovers_the_union() {
        let opts = snapshot_opts("roundtrip", "hllpp", 40_000, 4);
        let s = capture(|out| snapshot(&opts, out));
        assert!(s.contains("4 readers over 40000 tags"));
        let inputs = snapshot_paths(&opts);
        for path in &inputs {
            assert!(std::path::Path::new(path).exists(), "{path}");
        }

        let merge_opts = MergeOpts {
            inputs: inputs.clone(),
            truth: Some(40_000),
        };
        let m = capture(|out| merge(&merge_opts, out));
        assert!(m.contains("merged 4 snapshots (hllpp)"), "{m}");
        assert!(m.contains("rel_err"), "{m}");
        let rel = (merged_n_hat(&m) - 40_000.0).abs() / 40_000.0;
        assert!(rel < 0.08, "{m}");

        // Merging is order-invariant: reversed inputs, identical output.
        let reversed = MergeOpts {
            inputs: inputs.into_iter().rev().collect(),
            truth: Some(40_000),
        };
        assert_eq!(m, capture(|out| merge(&reversed, out)));
        remove_snapshots(&opts);
    }

    #[test]
    fn snapshot_supports_every_sketch_kind() {
        for sketch in ["llbeta", "bloom"] {
            let opts = snapshot_opts(sketch, sketch, 8_000, 2);
            capture(|out| snapshot(&opts, out));
            let merge_opts = MergeOpts {
                inputs: snapshot_paths(&opts),
                truth: None,
            };
            let m = capture(|out| merge(&merge_opts, out));
            // Kind names: "llbeta", "bloom-frame" — both start with the CLI name.
            assert!(m.contains(&format!("({sketch}")), "{m}");
            let n_hat = merged_n_hat(&m);
            // Bloom readers load-match p to their own coverage (4k tags
            // each here, equal loads), so the merged frame still inverts.
            let rel = (n_hat - 8_000.0).abs() / 8_000.0;
            assert!(rel < 0.15, "{sketch}: {m}");
            remove_snapshots(&opts);
        }
    }

    #[test]
    fn snapshot_rejects_unknown_sketch_and_merge_rejects_mixtures() {
        let opts = snapshot_opts("bogus", "bogus", 100, 1);
        let mut buf = Vec::new();
        assert!(snapshot(&opts, &mut buf).is_err());

        let a = snapshot_opts("mix-a", "hllpp", 1_000, 1);
        let b = snapshot_opts("mix-b", "bloom", 1_000, 1);
        capture(|out| snapshot(&a, out));
        capture(|out| snapshot(&b, out));
        let merge_opts = MergeOpts {
            inputs: vec![snapshot_paths(&a).remove(0), snapshot_paths(&b).remove(0)],
            truth: None,
        };
        let err = merge(&merge_opts, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("kinds differ"), "{err}");
        remove_snapshots(&a);
        remove_snapshots(&b);
    }

    #[test]
    fn merge_renders_every_wire_error_with_file_attribution() {
        // One corruption recipe per WireError variant. Each must surface
        // as `<path>: <typed rendering>` — the Display form with its
        // offset/value detail — never a bare Debug dump, and never blame
        // the healthy first input.
        use rfid_bfce::sketch::wire::{checksum, MAGIC};

        let opts = snapshot_opts("wire-errors", "hllpp", 2_000, 1);
        capture(|out| snapshot(&opts, out));
        let good_path = snapshot_paths(&opts).remove(0);
        let good = std::fs::read(&good_path).expect("read snapshot");
        let body = good[..good.len() - 8].to_vec();
        // Re-seal a corrupted body under a fresh checksum so decoding
        // reaches the variant under test instead of tripping on the sum.
        let reseal = |mut body: Vec<u8>| -> Vec<u8> {
            let sum = checksum(&body);
            body.extend_from_slice(&sum.to_le_bytes());
            body
        };

        let wrong_version = {
            let mut b = good.clone();
            b[13] = b'9'; // rfid-sketch/v9
            b
        };
        let unknown_kind = {
            let mut b = body.clone();
            b[MAGIC.len()] = 0x09;
            reseal(b)
        };
        let bad_checksum = {
            let mut b = good.clone();
            let last = b.len() - 1;
            b[last] ^= 0xFF;
            b
        };
        let invalid_field = {
            // A bloom-frame snapshot whose frame length field is zero.
            let mut b = MAGIC.to_vec();
            b.push(0x01); // SketchKind::BloomFrame
            b.extend_from_slice(&0u32.to_le_bytes());
            reseal(b)
        };
        let trailing = {
            let mut b = body.clone();
            b.push(0x00);
            reseal(b)
        };

        let cases: Vec<(&str, Vec<u8>, Vec<&str>)> = vec![
            ("bad-magic", b"definitely not a sketch".to_vec(), vec!["bad magic"]),
            ("unsupported-version", wrong_version, vec!["version not supported"]),
            (
                "truncated",
                good[..20].to_vec(),
                vec!["truncated snapshot", "at offset 20"],
            ),
            ("unknown-kind", unknown_kind, vec!["unknown sketch kind 0x09"]),
            ("bad-checksum", bad_checksum, vec!["checksum mismatch"]),
            (
                "invalid",
                invalid_field,
                vec!["invalid snapshot field", "frame length outside [1, 2^24]"],
            ),
            ("trailing-bytes", trailing, vec!["1 trailing bytes"]),
        ];
        for (name, bytes, needles) in cases {
            let path = std::env::temp_dir()
                .join(format!("rfid-cli-wire-{name}-{}.sketch", std::process::id()))
                .display()
                .to_string();
            std::fs::write(&path, &bytes).expect("write corrupted fixture");
            let merge_opts = MergeOpts {
                inputs: vec![good_path.clone(), path.clone()],
                truth: None,
            };
            let err = merge(&merge_opts, &mut Vec::new())
                .expect_err("corrupted input must fail the merge");
            let msg = err.to_string();
            assert!(msg.contains(&path), "{name}: no file attribution — {msg}");
            assert!(
                !msg.contains(&good_path),
                "{name}: blamed the healthy input — {msg}"
            );
            for needle in needles {
                assert!(msg.contains(needle), "{name}: missing `{needle}` — {msg}");
            }
            assert!(
                !msg.contains("WireError") && !msg.contains("Truncated {"),
                "{name}: bare Debug leaked into the message — {msg}"
            );
            let _ = std::fs::remove_file(&path);
        }
        remove_snapshots(&opts);
    }

    #[test]
    fn merge_reports_missing_files_by_path() {
        let merge_opts = MergeOpts {
            inputs: vec!["/nonexistent/readers.sketch".into()],
            truth: None,
        };
        let err = merge(&merge_opts, &mut Vec::new()).unwrap_err();
        assert!(err.to_string().contains("/nonexistent/readers.sketch"));
    }

    #[test]
    fn info_mentions_headline_numbers() {
        let s = capture(info);
        assert!(s.contains("9216"));
        assert!(s.contains("0.1846"));
    }
}
