//! Dependency-free `--key value` argument parsing for the `rfid` tool.

use rfid_workloads::WorkloadSpec;

/// Usage text printed by `rfid help` (and on parse errors).
pub const USAGE: &str = "\
rfid — BFCE RFID cardinality estimation (ICPP 2015 reproduction)

USAGE:
  rfid estimate  --n <count> [--estimator bfce] [--workload T1] [--epsilon 0.05]
                 [--delta 0.05] [--seed 42] [--trials 1] [--jobs 0] [--ber 0.0]
  rfid compare   --n <count> [--estimators bfce,zoe,src] [--workload T2]
                 [--epsilon 0.05] [--delta 0.05] [--seed 42]
  rfid trace     --n <count> [--workload T1] [--seed 42]
  rfid workload  --spec <T1|T2|T3|sequential|clustered> --n <count> [--seed 42]
  rfid diff      --n <count> [--departed 1000] [--arrived 500] [--seed 42]
  rfid robustness [--n 8000] [--classes abort,dropout] [--intensities 0.25,0.75]
                 [--estimators bfce,zoe,upe,fneb] [--epsilon 0.05] [--delta 0.05]
                 [--seed 42] [--trials 3] [--jobs 0]
  rfid snapshot  --n <count> [--sketch hllpp] [--readers 4] [--overlap 0.2]
                 [--out rfid] [--workload T1] [--seed 42]
  rfid merge     --inputs a.sketch,b.sketch[,...] [--truth <count>]
  rfid info
  rfid help

Estimators: bfce, zoe, src, lof, upe, ezb, fneb, art, mle, pet, a3, inventory,
            hllpp, llbeta
Sketches:   hllpp, llbeta, bloom (the rfid-sketch/v1 wire format)
Workloads:  T1 (uniform), T2 (approx normal), T3 (normal), sequential, clustered
Faults:     abort, burst, desync, dropout, capture, imperfect-hash, bit-error
";

/// Options shared by the estimation-style subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateOpts {
    /// Population size.
    pub n: usize,
    /// Estimator name (see [`USAGE`]).
    pub estimator: String,
    /// Tag-ID workload.
    pub workload: WorkloadSpec,
    /// Accuracy epsilon.
    pub epsilon: f64,
    /// Accuracy delta.
    pub delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Independent repetitions (`--trials`; `--rounds` is accepted as an
    /// alias).
    pub rounds: u32,
    /// Channel bit-error rate (0 = the paper's perfect channel).
    pub ber: f64,
    /// Worker threads for trial-parallel runs (0 = one per CPU core).
    pub jobs: usize,
}

impl Default for EstimateOpts {
    fn default() -> Self {
        Self {
            n: 100_000,
            estimator: "bfce".into(),
            workload: WorkloadSpec::T1,
            epsilon: 0.05,
            delta: 0.05,
            seed: 42,
            rounds: 1,
            ber: 0.0,
            jobs: 0,
        }
    }
}

/// Options for `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareOpts {
    /// Base estimation options (its `estimator` field is unused).
    pub base: EstimateOpts,
    /// Estimator names to compare.
    pub estimators: Vec<String>,
}

/// Options for `workload`.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadOpts {
    /// Which distribution.
    pub spec: WorkloadSpec,
    /// How many IDs.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Options for `diff`.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOpts {
    /// Epoch-1 population size.
    pub n: usize,
    /// Tags departing before epoch 2.
    pub departed: usize,
    /// Tags arriving before epoch 2.
    pub arrived: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Options for `robustness`.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessOpts {
    /// Population size per trial.
    pub n: usize,
    /// Fault classes to sweep (validated downstream against the
    /// experiment registry).
    pub classes: Vec<String>,
    /// Fault intensities, each in [0, 1].
    pub intensities: Vec<f64>,
    /// Estimator names to sweep.
    pub estimators: Vec<String>,
    /// Accuracy epsilon.
    pub epsilon: f64,
    /// Accuracy delta.
    pub delta: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Trials per cell.
    pub trials: u32,
    /// Worker threads (0 = one per CPU core).
    pub jobs: usize,
}

impl Default for RobustnessOpts {
    fn default() -> Self {
        Self {
            n: 8_000,
            classes: Vec::new(), // empty = every class
            intensities: vec![0.25, 0.75],
            estimators: vec!["bfce".into(), "zoe".into(), "upe".into(), "fneb".into()],
            epsilon: 0.05,
            delta: 0.05,
            seed: 42,
            trials: 3,
            jobs: 0,
        }
    }
}

/// Options for `snapshot`.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotOpts {
    /// Total (union) population size across the deployment.
    pub n: usize,
    /// Which sketch to collect: `hllpp`, `llbeta`, or `bloom`.
    pub sketch: String,
    /// Physical readers in the deployment.
    pub readers: usize,
    /// Fraction of each reader's coverage shared with its neighbour,
    /// in `[0, 1)`.
    pub overlap: f64,
    /// Output path prefix; reader `i` writes `<out>.reader<i>.sketch`.
    pub out: String,
    /// Tag-ID workload.
    pub workload: WorkloadSpec,
    /// RNG seed (also derives the shared broadcast seed all readers use).
    pub seed: u64,
}

impl Default for SnapshotOpts {
    fn default() -> Self {
        Self {
            n: 100_000,
            sketch: "hllpp".into(),
            readers: 4,
            overlap: 0.2,
            out: "rfid".into(),
            workload: WorkloadSpec::T1,
            seed: 42,
        }
    }
}

/// Options for `merge`.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeOpts {
    /// Snapshot files to fold, in order.
    pub inputs: Vec<String>,
    /// Known true cardinality, for a relative-error column.
    pub truth: Option<usize>,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `rfid estimate …`
    Estimate(EstimateOpts),
    /// `rfid compare …`
    Compare(CompareOpts),
    /// `rfid trace …`
    Trace(EstimateOpts),
    /// `rfid workload …`
    Workload(WorkloadOpts),
    /// `rfid diff …`
    Diff(DiffOpts),
    /// `rfid robustness …`
    Robustness(RobustnessOpts),
    /// `rfid snapshot …`
    Snapshot(SnapshotOpts),
    /// `rfid merge …`
    Merge(MergeOpts),
    /// `rfid info`
    Info,
    /// `rfid help` (or no arguments)
    Help,
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn parse_workload(value: &str) -> Result<WorkloadSpec, ParseError> {
    match value.to_ascii_lowercase().as_str() {
        "t1" => Ok(WorkloadSpec::T1),
        "t2" => Ok(WorkloadSpec::T2),
        "t3" => Ok(WorkloadSpec::T3),
        "sequential" => Ok(WorkloadSpec::Sequential),
        "clustered" => Ok(WorkloadSpec::Clustered { block: 1000 }),
        other => Err(ParseError(format!("unknown workload '{other}'"))),
    }
}

/// Collect `--key value` pairs after the subcommand.
fn key_values(args: &[String]) -> Result<Vec<(&str, &str)>, ParseError> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| ParseError(format!("expected --key, got '{}'", args[i])))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| ParseError(format!("--{key} needs a value")))?;
        out.push((key, value.as_str()));
        i += 2;
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("--{key}: cannot parse '{value}'")))
}

fn fill_estimate_opts(
    opts: &mut EstimateOpts,
    pairs: &[(&str, &str)],
    allow_estimator: bool,
) -> Result<(), ParseError> {
    for &(key, value) in pairs {
        match key {
            "n" => opts.n = parse_num(key, value)?,
            "estimator" if allow_estimator => opts.estimator = value.to_string(),
            "workload" => opts.workload = parse_workload(value)?,
            "epsilon" => opts.epsilon = parse_num(key, value)?,
            "delta" => opts.delta = parse_num(key, value)?,
            "seed" => opts.seed = parse_num(key, value)?,
            "rounds" | "trials" => opts.rounds = parse_num(key, value)?,
            "ber" => opts.ber = parse_num(key, value)?,
            "jobs" => opts.jobs = parse_num(key, value)?,
            other => return Err(ParseError(format!("unknown option --{other}"))),
        }
    }
    if opts.epsilon <= 0.0 || opts.epsilon >= 1.0 {
        return Err(ParseError("--epsilon must lie in (0, 1)".into()));
    }
    if opts.delta <= 0.0 || opts.delta >= 1.0 {
        return Err(ParseError("--delta must lie in (0, 1)".into()));
    }
    if opts.rounds == 0 {
        return Err(ParseError("--trials must be at least 1".into()));
    }
    if !(0.0..=1.0).contains(&opts.ber) {
        return Err(ParseError("--ber must lie in [0, 1]".into()));
    }
    Ok(())
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    let rest = &args[1..];
    match sub.as_str() {
        "estimate" | "trace" => {
            let mut opts = EstimateOpts::default();
            fill_estimate_opts(&mut opts, &key_values(rest)?, sub == "estimate")?;
            if sub == "estimate" {
                Ok(Command::Estimate(opts))
            } else {
                Ok(Command::Trace(opts))
            }
        }
        "compare" => {
            let pairs = key_values(rest)?;
            let mut estimators = vec!["bfce".into(), "zoe".into(), "src".into()];
            let mut remaining = Vec::new();
            for &(key, value) in &pairs {
                if key == "estimators" {
                    estimators = value.split(',').map(|s| s.trim().to_string()).collect();
                    if estimators.is_empty() {
                        return Err(ParseError("--estimators list is empty".into()));
                    }
                } else {
                    remaining.push((key, value));
                }
            }
            let mut base = EstimateOpts::default();
            fill_estimate_opts(&mut base, &remaining, false)?;
            Ok(Command::Compare(CompareOpts { base, estimators }))
        }
        "workload" => {
            let mut opts = WorkloadOpts {
                spec: WorkloadSpec::T1,
                n: 20,
                seed: 42,
            };
            for (key, value) in key_values(rest)? {
                match key {
                    "spec" => opts.spec = parse_workload(value)?,
                    "n" => opts.n = parse_num(key, value)?,
                    "seed" => opts.seed = parse_num(key, value)?,
                    other => {
                        return Err(ParseError(format!("unknown option --{other}")))
                    }
                }
            }
            Ok(Command::Workload(opts))
        }
        "diff" => {
            let mut opts = DiffOpts {
                n: 50_000,
                departed: 2_500,
                arrived: 1_000,
                seed: 42,
            };
            for (key, value) in key_values(rest)? {
                match key {
                    "n" => opts.n = parse_num(key, value)?,
                    "departed" => opts.departed = parse_num(key, value)?,
                    "arrived" => opts.arrived = parse_num(key, value)?,
                    "seed" => opts.seed = parse_num(key, value)?,
                    other => {
                        return Err(ParseError(format!("unknown option --{other}")))
                    }
                }
            }
            if opts.departed > opts.n {
                return Err(ParseError("--departed exceeds --n".into()));
            }
            Ok(Command::Diff(opts))
        }
        "robustness" => {
            let mut opts = RobustnessOpts::default();
            for (key, value) in key_values(rest)? {
                match key {
                    "n" => opts.n = parse_num(key, value)?,
                    "classes" => {
                        opts.classes =
                            value.split(',').map(|s| s.trim().to_string()).collect();
                    }
                    "intensities" => {
                        opts.intensities = value
                            .split(',')
                            .map(|s| parse_num("intensities", s.trim()))
                            .collect::<Result<_, _>>()?;
                    }
                    "estimators" => {
                        opts.estimators =
                            value.split(',').map(|s| s.trim().to_string()).collect();
                    }
                    "epsilon" => opts.epsilon = parse_num(key, value)?,
                    "delta" => opts.delta = parse_num(key, value)?,
                    "seed" => opts.seed = parse_num(key, value)?,
                    "trials" | "rounds" => opts.trials = parse_num(key, value)?,
                    "jobs" => opts.jobs = parse_num(key, value)?,
                    other => {
                        return Err(ParseError(format!("unknown option --{other}")))
                    }
                }
            }
            if opts.epsilon <= 0.0 || opts.epsilon >= 1.0 {
                return Err(ParseError("--epsilon must lie in (0, 1)".into()));
            }
            if opts.delta <= 0.0 || opts.delta >= 1.0 {
                return Err(ParseError("--delta must lie in (0, 1)".into()));
            }
            if opts.trials == 0 {
                return Err(ParseError("--trials must be at least 1".into()));
            }
            if opts.estimators.is_empty() {
                return Err(ParseError("--estimators list is empty".into()));
            }
            if opts.intensities.is_empty()
                || opts.intensities.iter().any(|l| !(0.0..=1.0).contains(l))
            {
                return Err(ParseError(
                    "--intensities must be a non-empty list within [0, 1]".into(),
                ));
            }
            Ok(Command::Robustness(opts))
        }
        "snapshot" => {
            let mut opts = SnapshotOpts::default();
            for (key, value) in key_values(rest)? {
                match key {
                    "n" => opts.n = parse_num(key, value)?,
                    "sketch" => opts.sketch = value.to_ascii_lowercase(),
                    "readers" => opts.readers = parse_num(key, value)?,
                    "overlap" => opts.overlap = parse_num(key, value)?,
                    "out" => opts.out = value.to_string(),
                    "workload" => opts.workload = parse_workload(value)?,
                    "seed" => opts.seed = parse_num(key, value)?,
                    other => {
                        return Err(ParseError(format!("unknown option --{other}")))
                    }
                }
            }
            if opts.readers == 0 {
                return Err(ParseError("--readers must be at least 1".into()));
            }
            if !(0.0..1.0).contains(&opts.overlap) {
                return Err(ParseError("--overlap must lie in [0, 1)".into()));
            }
            if opts.out.is_empty() {
                return Err(ParseError("--out must not be empty".into()));
            }
            Ok(Command::Snapshot(opts))
        }
        "merge" => {
            let mut opts = MergeOpts {
                inputs: Vec::new(),
                truth: None,
            };
            for (key, value) in key_values(rest)? {
                match key {
                    "inputs" => {
                        opts.inputs = value
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect();
                    }
                    "truth" => opts.truth = Some(parse_num(key, value)?),
                    other => {
                        return Err(ParseError(format!("unknown option --{other}")))
                    }
                }
            }
            if opts.inputs.is_empty() {
                return Err(ParseError(
                    "--inputs needs at least one snapshot file".into(),
                ));
            }
            Ok(Command::Merge(opts))
        }
        "info" => Ok(Command::Info),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown subcommand '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn empty_is_help() -> Result<(), ParseError> {
        assert_eq!(parse(&[])?, Command::Help);
        assert_eq!(parse(&argv("help"))?, Command::Help);
        assert_eq!(parse(&argv("--help"))?, Command::Help);
        Ok(())
    }

    #[test]
    fn estimate_defaults_and_overrides() -> Result<(), ParseError> {
        let cmd = parse(&argv(
            "estimate --n 5000 --estimator zoe --workload t3 --epsilon 0.1 \
             --delta 0.2 --seed 7 --rounds 3 --ber 0.01",
        ))?;
        let Command::Estimate(o) = cmd else {
            panic!("wrong variant")
        };
        assert_eq!(o.n, 5000);
        assert_eq!(o.estimator, "zoe");
        assert_eq!(o.workload, WorkloadSpec::T3);
        assert_eq!(o.epsilon, 0.1);
        assert_eq!(o.delta, 0.2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.rounds, 3);
        assert_eq!(o.ber, 0.01);
        Ok(())
    }

    #[test]
    fn estimate_trials_and_jobs_flags() -> Result<(), ParseError> {
        let Command::Estimate(o) = parse(&argv("estimate --trials 8 --jobs 4"))? else {
            panic!()
        };
        assert_eq!(o.rounds, 8);
        assert_eq!(o.jobs, 4);
        // --rounds stays as a backwards-compatible alias.
        let Command::Estimate(o) = parse(&argv("estimate --rounds 5"))? else {
            panic!()
        };
        assert_eq!(o.rounds, 5);
        assert!(parse(&argv("estimate --trials 0")).is_err());
        assert!(parse(&argv("estimate --jobs x")).is_err());
        Ok(())
    }

    #[test]
    fn estimate_bare_uses_defaults() -> Result<(), ParseError> {
        let Command::Estimate(o) = parse(&argv("estimate"))? else {
            panic!()
        };
        assert_eq!(o, EstimateOpts::default());
        Ok(())
    }

    #[test]
    fn compare_parses_estimator_list() -> Result<(), ParseError> {
        let Command::Compare(c) = parse(&argv("compare --n 1000 --estimators bfce,ezb,art"))?
        else {
            panic!()
        };
        assert_eq!(c.estimators, vec!["bfce", "ezb", "art"]);
        assert_eq!(c.base.n, 1000);
        Ok(())
    }

    #[test]
    fn compare_rejects_estimator_key_in_base() {
        assert!(parse(&argv("compare --estimator zoe")).is_err());
    }

    #[test]
    fn trace_ignores_estimator_key() {
        assert!(parse(&argv("trace --estimator zoe")).is_err());
        assert!(parse(&argv("trace --n 100")).is_ok());
    }

    #[test]
    fn workload_subcommand() -> Result<(), ParseError> {
        let Command::Workload(w) = parse(&argv("workload --spec sequential --n 5 --seed 9"))?
        else {
            panic!()
        };
        assert_eq!(w.spec, WorkloadSpec::Sequential);
        assert_eq!(w.n, 5);
        assert_eq!(w.seed, 9);
        Ok(())
    }

    #[test]
    fn diff_subcommand() -> Result<(), ParseError> {
        let Command::Diff(d) = parse(&argv("diff --n 10000 --departed 800 --arrived 300 --seed 5"))?
        else {
            panic!()
        };
        assert_eq!(d.n, 10_000);
        assert_eq!(d.departed, 800);
        assert_eq!(d.arrived, 300);
        assert_eq!(d.seed, 5);
        assert!(parse(&argv("diff --n 10 --departed 11")).is_err());
        Ok(())
    }

    #[test]
    fn robustness_subcommand() -> Result<(), ParseError> {
        let Command::Robustness(o) = parse(&argv(
            "robustness --n 4000 --classes abort,dropout --intensities 0.1,0.9 \
             --estimators bfce,zoe --trials 2 --seed 7 --jobs 2",
        ))?
        else {
            panic!()
        };
        assert_eq!(o.n, 4_000);
        assert_eq!(o.classes, vec!["abort", "dropout"]);
        assert_eq!(o.intensities, vec![0.1, 0.9]);
        assert_eq!(o.estimators, vec!["bfce", "zoe"]);
        assert_eq!(o.trials, 2);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 2);
        // Bare invocation sweeps every class with the defaults.
        let Command::Robustness(o) = parse(&argv("robustness"))? else {
            panic!()
        };
        assert_eq!(o, RobustnessOpts::default());
        assert!(parse(&argv("robustness --intensities 1.5")).is_err());
        assert!(parse(&argv("robustness --trials 0")).is_err());
        assert!(parse(&argv("robustness --bogus 1")).is_err());
        Ok(())
    }

    #[test]
    fn snapshot_subcommand() -> Result<(), ParseError> {
        let Command::Snapshot(o) = parse(&argv(
            "snapshot --n 50000 --sketch llbeta --readers 8 --overlap 0.3 \
             --out /tmp/depot --workload t2 --seed 9",
        ))?
        else {
            panic!()
        };
        assert_eq!(o.n, 50_000);
        assert_eq!(o.sketch, "llbeta");
        assert_eq!(o.readers, 8);
        assert_eq!(o.overlap, 0.3);
        assert_eq!(o.out, "/tmp/depot");
        assert_eq!(o.workload, WorkloadSpec::T2);
        assert_eq!(o.seed, 9);
        // Bare invocation uses the defaults; case is normalized.
        let Command::Snapshot(o) = parse(&argv("snapshot --sketch BLOOM"))? else {
            panic!()
        };
        assert_eq!(o.sketch, "bloom");
        assert_eq!(o.readers, 4);
        assert!(parse(&argv("snapshot --readers 0")).is_err());
        assert!(parse(&argv("snapshot --overlap 1.0")).is_err());
        assert!(parse(&argv("snapshot --bogus 1")).is_err());
        Ok(())
    }

    #[test]
    fn merge_subcommand() -> Result<(), ParseError> {
        let Command::Merge(o) =
            parse(&argv("merge --inputs a.sketch,b.sketch --truth 100000"))?
        else {
            panic!()
        };
        assert_eq!(o.inputs, vec!["a.sketch", "b.sketch"]);
        assert_eq!(o.truth, Some(100_000));
        let Command::Merge(o) = parse(&argv("merge --inputs lone.sketch"))? else {
            panic!()
        };
        assert_eq!(o.truth, None);
        assert!(parse(&argv("merge")).is_err());
        assert!(parse(&argv("merge --inputs ,")).is_err());
        assert!(parse(&argv("merge --truth 5")).is_err());
        Ok(())
    }

    #[test]
    fn ber_accepts_the_closed_unit_interval() -> Result<(), ParseError> {
        let Command::Estimate(o) = parse(&argv("estimate --ber 1.0"))? else {
            panic!()
        };
        assert_eq!(o.ber, 1.0);
        Ok(())
    }

    #[test]
    fn validation_errors() {
        assert!(parse(&argv("estimate --epsilon 0")).is_err());
        assert!(parse(&argv("estimate --delta 1")).is_err());
        assert!(parse(&argv("estimate --rounds 0")).is_err());
        assert!(parse(&argv("estimate --ber 1.5")).is_err());
        assert!(parse(&argv("estimate --n notanumber")).is_err());
        assert!(parse(&argv("estimate --bogus 1")).is_err());
        assert!(parse(&argv("estimate --n")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("estimate n 5")).is_err());
        assert!(parse(&argv("estimate --workload t9")).is_err());
    }
}
