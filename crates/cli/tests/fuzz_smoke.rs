//! Deterministic smoke pass over the argument-parser fuzz body.
//!
//! `fuzz/` proper needs nightly + `cargo-fuzz`; this test keeps the
//! `cli_args` body honest on every `cargo test` by replaying its seed
//! corpus (valid invocations of the flag-heavy subcommands plus known
//! malformed soup) and then hammering the body with deterministic
//! mutations from a fixed-seed xorshift. Any panic the nightly fuzzer
//! finds lands as a corpus file here and reproduces forever after.

use rfid_cli::fuzz::cli_args;
use std::path::{Path, PathBuf};

/// Mutations tried per corpus seed — the body is cheap (pure parsing),
/// so this matches the other text-input smoke tests.
const MUTATIONS_PER_SEED: u64 = 128;

fn corpus_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/cli sits two levels below the root")
        .join("fuzz")
        .join("corpus")
        .join("cli_args")
}

fn seeds() -> Vec<(PathBuf, Vec<u8>)> {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus {}: {e}", dir.display()));
    let mut out: Vec<(PathBuf, Vec<u8>)> = entries
        .flatten()
        .map(|entry| {
            let path = entry.path();
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("read seed {}: {e}", path.display()));
            (path, bytes)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "empty corpus at {}", dir.display());
    out
}

/// Fixed-seed xorshift64* — the mutation schedule must be identical on
/// every host so a failure here is a failure everywhere.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Flip bytes, truncate, splice, duplicate flags, or inject separators,
/// deterministically. Separator injection (spaces/newlines) reshapes the
/// argument vector itself, which is where a parser indexes out of range.
fn mutate(seed: &[u8], rng: &mut XorShift) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    if bytes.is_empty() {
        return vec![(rng.next() & 0xFF) as u8];
    }
    match rng.next() % 5 {
        0 => {
            for _ in 0..1 + rng.next() % 8 {
                let i = (rng.next() as usize) % bytes.len();
                bytes[i] = (rng.next() & 0xFF) as u8;
            }
        }
        1 => {
            bytes.truncate((rng.next() as usize) % bytes.len());
        }
        2 => {
            // Splice a chunk onto itself: duplicated flags and values.
            let at = (rng.next() as usize) % bytes.len();
            let chunk: Vec<u8> = bytes[at..].to_vec();
            bytes.extend_from_slice(&chunk);
        }
        3 => {
            // Inject argument separators: split a token in two, or glue a
            // dangling `--key` with no value onto the end.
            let i = (rng.next() as usize) % bytes.len();
            bytes[i] = if rng.next() & 1 == 0 { b' ' } else { b'\n' };
            bytes.extend_from_slice(b" --");
        }
        _ => {
            for _ in 0..1 + rng.next() % 9 {
                bytes.push((rng.next() & 0xFF) as u8);
            }
        }
    }
    bytes
}

#[test]
fn cli_args_smoke() {
    let mut rng = XorShift(0x5EED_0BAD_F00D_u64);
    for (path, seed) in seeds() {
        cli_args(&seed);
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&seed, &mut rng);
            // A panic's message won't name the input, so wrap with context.
            let outcome = std::panic::catch_unwind(|| cli_args(&mutant));
            if outcome.is_err() {
                panic!(
                    "cli_args panicked on a mutation of {} ({} bytes); \
                     save the input as a corpus file to pin it",
                    path.display(),
                    mutant.len()
                );
            }
        }
    }
}

#[test]
fn corpus_keeps_every_flag_heavy_subcommand_alive() {
    // Mutations only reach a subcommand's option table if some seed
    // names it; `estimate`, `merge`, and `snapshot` carry the widest
    // flag surfaces.
    let all: Vec<String> = seeds()
        .into_iter()
        .map(|(_, bytes)| String::from_utf8_lossy(&bytes).into_owned())
        .collect();
    for sub in ["estimate", "merge", "snapshot"] {
        assert!(
            all.iter().any(|s| s.contains(sub)),
            "no corpus seed exercises `{sub}`"
        );
    }
}
