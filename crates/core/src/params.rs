//! BFCE configuration.
//!
//! The paper fixes every parameter empirically (Section IV-B): `w = 8192`
//! (scalable to >19 M tags yet cheap to hash), `k = 3` (variance vs.
//! per-tag work), `c = 0.5` (makes `n_low <= n` hold in most cases), a
//! 1024-slot rough observation, and a 32-slot probe window starting from
//! `p_s = 8/1024` with `+2/1024` / `-1/1024` adjustment steps. All of them
//! are exposed here so the ablation benches can sweep them.

use rfid_hash::{MixHasher, SlotHasher, XorBitgetHasher};

/// Which tag-side slot hash to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HasherKind {
    /// The paper's lightweight `bitget(RN ^ RS, log2(w):1)` hash
    /// (Section IV-E2). Requires `w` to be a power of two.
    XorBitget,
    /// A full-avalanche hash of `(tag id, seed)` — the ablation comparator.
    Mix64,
}

impl HasherKind {
    /// Resolve to a hasher implementation.
    pub fn hasher(&self) -> &'static dyn SlotHasher {
        match self {
            HasherKind::XorBitget => &XorBitgetHasher,
            HasherKind::Mix64 => &MixHasher,
        }
    }
}

/// Full BFCE parameter set. `Default` reproduces the paper exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BfceConfig {
    /// Bloom-filter vector length `w` (paper: 8192).
    pub w: usize,
    /// Number of hash functions `k` (paper: 3).
    pub k: usize,
    /// Rough lower-bound coefficient `c` in `[0.1, 0.9]` (paper: 0.5).
    pub c: f64,
    /// Bit-slots observed in the rough phase (paper: 1024).
    pub rough_observe: usize,
    /// Probe window length in bit-slots (paper: 32).
    pub probe_window: usize,
    /// Initial probe numerator: `p_s = probe_initial_pn / 1024` (paper: 8).
    pub probe_initial_pn: u32,
    /// Numerator increment when the probe window is all idle (paper: 2).
    pub probe_up_step: u32,
    /// Numerator decrement when the probe window is all busy (paper: 1).
    pub probe_down_step: u32,
    /// Give up probing after this many windows at a clamped numerator.
    pub probe_patience: u32,
    /// Hard cap on total probe windows.
    ///
    /// With pathological populations (e.g. every tag sharing one RN, so
    /// responses are all-or-nothing) the additive walk can oscillate
    /// around a response threshold *deterministically* — same seeds, same
    /// numerator, same window — and would otherwise never terminate. The
    /// cap turns that into a clamped, warned outcome.
    pub probe_max_rounds: u32,
    /// Use geometric (doubling/halving) probe adjustment instead of the
    /// paper's additive `+2/1024`, `-1/1024` steps.
    ///
    /// The paper's additive rule has to walk the numerator up when the
    /// population is small (~20 windows on average at `n ~ 1000`, +25 %
    /// execution time); geometric adjustment converges in ~3 windows with
    /// the same termination condition. Off by default to match the paper;
    /// the probe ablation quantifies the difference.
    pub probe_geometric: bool,
    /// Bits per broadcast random seed `l_R` (paper: 32).
    pub seed_bits: u64,
    /// Bits to broadcast the persistence numerator `l_p` (paper: 32).
    pub p_bits: u64,
    /// Tag-side slot hash.
    pub hasher: HasherKind,
}

impl BfceConfig {
    /// The exact configuration of the paper.
    pub const fn paper() -> Self {
        Self {
            w: 8192,
            k: 3,
            c: 0.5,
            rough_observe: 1024,
            probe_window: 32,
            probe_initial_pn: 8,
            probe_up_step: 2,
            probe_down_step: 1,
            probe_patience: 8,
            probe_max_rounds: 1024,
            probe_geometric: false,
            seed_bits: 32,
            p_bits: 32,
            hasher: HasherKind::XorBitget,
        }
    }

    /// Panic unless the configuration is internally consistent.
    pub fn validate(&self) {
        assert!(self.w >= 2, "w must be at least 2");
        if self.hasher == HasherKind::XorBitget {
            // analysis:allow(panic-path): validate() is the designated loud precondition gate, run once at setup
            assert!(
                self.w.is_power_of_two(),
                "the XOR-bitget hash requires w to be a power of two, got {}",
                self.w
            );
        }
        assert!((1..=16).contains(&self.k), "k must lie in 1..=16");
        assert!(
            self.c > 0.0 && self.c <= 1.0,
            "c must lie in (0, 1], got {}",
            self.c
        );
        assert!(
            self.rough_observe >= 1 && self.rough_observe <= self.w,
            "rough_observe must lie in [1, w]"
        );
        assert!(
            self.probe_window >= 1 && self.probe_window <= self.w,
            "probe_window must lie in [1, w]"
        );
        assert!(
            (1..=1023).contains(&self.probe_initial_pn),
            "probe_initial_pn must lie in [1, 1023]"
        );
        assert!(self.probe_up_step >= 1, "probe_up_step must be positive");
        assert!(self.probe_down_step >= 1, "probe_down_step must be positive");
        assert!(self.probe_patience >= 1, "probe_patience must be positive");
        assert!(
            self.probe_max_rounds >= 1,
            "probe_max_rounds must be positive"
        );
    }

    /// Bits in the per-phase parameter broadcast: `k` seeds plus `p`.
    pub fn phase_broadcast_bits(&self) -> u64 {
        self.k as u64 * self.seed_bits + self.p_bits
    }
}

impl Default for BfceConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_iv() {
        let c = BfceConfig::paper();
        assert_eq!(c.w, 8192);
        assert_eq!(c.k, 3);
        assert_eq!(c.c, 0.5);
        assert_eq!(c.rough_observe, 1024);
        assert_eq!(c.probe_window, 32);
        assert_eq!(c.probe_initial_pn, 8);
        assert_eq!(c.probe_up_step, 2);
        assert_eq!(c.probe_down_step, 1);
        assert_eq!(c.hasher, HasherKind::XorBitget);
        c.validate();
        assert_eq!(BfceConfig::default(), c);
    }

    #[test]
    fn phase_broadcast_is_128_bits() {
        // 3 seeds * 32 + 32 for p = 128, the quantity in the Section IV-E1
        // overhead formula.
        assert_eq!(BfceConfig::paper().phase_broadcast_bits(), 128);
    }

    #[test]
    fn hasher_kinds_resolve() {
        assert_eq!(HasherKind::XorBitget.hasher().name(), "xor-bitget");
        assert_eq!(HasherKind::Mix64.hasher().name(), "mix64");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn xor_bitget_with_odd_w_rejected() {
        let cfg = BfceConfig {
            w: 1000,
            ..BfceConfig::paper()
        };
        cfg.validate();
    }

    #[test]
    fn mix_hasher_allows_any_w() {
        let cfg = BfceConfig {
            w: 1000,
            rough_observe: 500,
            hasher: HasherKind::Mix64,
            ..BfceConfig::paper()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "rough_observe")]
    fn rough_observe_beyond_w_rejected() {
        let cfg = BfceConfig {
            rough_observe: 10_000,
            ..BfceConfig::paper()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "c must lie in (0, 1]")]
    fn zero_c_rejected() {
        let cfg = BfceConfig {
            c: 0.0,
            ..BfceConfig::paper()
        };
        cfg.validate();
    }
}
