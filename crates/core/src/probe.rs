//! The probe stage: finding a *valid* persistence probability `p_s`.
//!
//! Section IV-C: "We set a specific persistence probability
//! `p_s = 2^3/2^10`, and observe the received Xs in the coming 32
//! bit-slots. If all the 32 slots are idle slots … we adjust the response
//! probability to `p_s + 2/2^10`. On the contrary, if all the 32 bit-slots
//! are busy slots … we reduce it to `p_s - 1/2^10`. This procedure is
//! immediately terminated once both idle and busy slots appear."
//!
//! Each probe window is the observed prefix of a full `w`-slot Bloom frame
//! (the tags hash into `[0, w)` exactly as in the estimation phases), so a
//! mixed window certifies that the per-slot load `lambda` is moderate —
//! which is precisely what the rough phase needs to avoid the all-0s /
//! all-1s exceptions of Theorem 2.
//!
//! The numerator is clamped to `[1, 1023]`; if the window stays degenerate
//! at a clamp for `probe_patience` consecutive rounds the stage accepts the
//! clamped value (with a flag) rather than looping forever — an all-idle
//! window at `p = 1023/1024` means the population is far below the
//! estimator's design range (the paper assumes `n > 1000`).

use crate::estimator::bloom_plan;
use crate::params::BfceConfig;
use rand::RngCore;
use rfid_sim::RfidSystem;

/// What the probe stage produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The accepted persistence numerator `p_s = p_n / 1024`.
    pub p_n: u32,
    /// Number of 32-slot probe windows executed.
    pub rounds: u32,
    /// True if the final window contained both idle and busy slots.
    pub mixed: bool,
    /// True if the search was stopped at a clamped numerator without ever
    /// observing a mixed window.
    pub clamped: bool,
    /// The seeds broadcast for this stage (reused by no other stage).
    pub seeds: Vec<u32>,
}

/// Run the probe stage against the system, charging all traffic to its
/// ledger. `rng` supplies the reader-side seed draws.
pub fn run_probe(
    cfg: &BfceConfig,
    system: &mut RfidSystem,
    rng: &mut dyn RngCore,
) -> ProbeOutcome {
    cfg.validate();
    let seeds: Vec<u32> = (0..cfg.k).map(|_| rng.next_u32()).collect();
    let mut p_n = cfg.probe_initial_pn;
    let mut rounds = 0u32;
    let mut patience = cfg.probe_patience;

    loop {
        rounds += 1;
        if rounds == 1 {
            // First message carries the seeds and p.
            system.broadcast(cfg.phase_broadcast_bits());
        } else {
            // Subsequent rounds only update p.
            system.turnaround();
            system.broadcast(cfg.p_bits);
        }
        let busy = {
            let plan = bloom_plan(cfg, &seeds, p_n);
            let frame =
                system.run_bitslot_frame_prefix(cfg.w, cfg.probe_window, &plan);
            frame.busy_count()
        };

        if busy > 0 && busy < cfg.probe_window {
            return ProbeOutcome {
                p_n,
                rounds,
                mixed: true,
                clamped: false,
                seeds,
            };
        }
        if rounds >= cfg.probe_max_rounds {
            // Degenerate population (e.g. shared RNs): the walk can cycle
            // deterministically between all-idle and all-busy without ever
            // mixing. Stop and let the rough phase cope.
            return ProbeOutcome {
                p_n,
                rounds,
                mixed: false,
                clamped: true,
                seeds,
            };
        }

        let next = if busy == 0 {
            // All idle: the persistence is too small for this population.
            if cfg.probe_geometric {
                (p_n * 2).min(1023)
            } else {
                (p_n + cfg.probe_up_step).min(1023)
            }
        } else {
            // All busy: too large.
            if cfg.probe_geometric {
                (p_n / 2).max(1)
            } else {
                p_n.saturating_sub(cfg.probe_down_step).max(1)
            }
        };

        if next == p_n {
            // Stuck at a clamp; give the channel a few more chances (the
            // window is random) before accepting.
            patience -= 1;
            if patience == 0 {
                return ProbeOutcome {
                    p_n,
                    rounds,
                    mixed: false,
                    clamped: true,
                    seeds,
                };
            }
        } else {
            patience = cfg.probe_patience;
        }
        p_n = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(0x1234),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn medium_population_probes_in_one_round() {
        // n = 500k at p = 8/1024 gives lambda ~ 1.43: a 32-slot window is
        // overwhelmingly mixed on the first try.
        let mut sys = system_with(500_000);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_probe(&BfceConfig::paper(), &mut sys, &mut rng);
        assert!(out.mixed);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.p_n, 8);
        assert_eq!(out.seeds.len(), 3);
    }

    #[test]
    fn small_population_raises_p() {
        // n = 2000: initial p is far too small (expected busy fraction
        // ~0.6%), so the probe must walk p upward until mixed.
        let mut sys = system_with(2_000);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_probe(&BfceConfig::paper(), &mut sys, &mut rng);
        assert!(out.mixed, "{out:?}");
        assert!(out.p_n > 8, "p_n = {}", out.p_n);
        assert!(out.rounds > 1);
    }

    #[test]
    fn huge_population_lowers_p() {
        // n = 5M at p = 8/1024: lambda ~ 14.3, all busy; probe must step
        // down.
        let mut sys = system_with(5_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_probe(&BfceConfig::paper(), &mut sys, &mut rng);
        assert!(out.p_n < 8, "p_n = {}", out.p_n);
        // Either it found a mixed window or bottomed out at 1.
        assert!(out.mixed || out.p_n == 1, "{out:?}");
    }

    #[test]
    fn empty_population_clamps_at_max() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_probe(&BfceConfig::paper(), &mut sys, &mut rng);
        assert!(!out.mixed);
        assert!(out.clamped);
        assert_eq!(out.p_n, 1023);
    }

    #[test]
    fn probe_charges_air_time() {
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = BfceConfig::paper();
        let out = run_probe(&cfg, &mut sys, &mut rng);
        let air = sys.air_time();
        assert_eq!(air.bitslots, out.rounds as u64 * 32);
        // First round broadcasts 128 bits, later rounds 32.
        let expect_bits = 128 + (out.rounds as u64 - 1) * 32;
        assert_eq!(air.reader_bits, expect_bits);
    }

    #[test]
    fn geometric_probe_converges_much_faster_for_small_populations() {
        // n = 1500: the paper's additive rule has to walk the numerator up
        // in +2 steps; doubling gets there exponentially faster.
        let additive_cfg = BfceConfig::paper();
        let geometric_cfg = BfceConfig {
            probe_geometric: true,
            ..BfceConfig::paper()
        };
        let rounds_with = |cfg: &BfceConfig| {
            let mut sys = system_with(1_500);
            let mut rng = StdRng::seed_from_u64(17);
            run_probe(cfg, &mut sys, &mut rng).rounds
        };
        let additive = rounds_with(&additive_cfg);
        let geometric = rounds_with(&geometric_cfg);
        assert!(
            geometric * 4 < additive,
            "additive {additive} vs geometric {geometric}"
        );
    }

    #[test]
    fn geometric_probe_still_finds_a_mixed_window() {
        let cfg = BfceConfig {
            probe_geometric: true,
            ..BfceConfig::paper()
        };
        for n in [2_000usize, 100_000, 2_000_000] {
            let mut sys = system_with(n);
            let mut rng = StdRng::seed_from_u64(n as u64);
            let out = run_probe(&cfg, &mut sys, &mut rng);
            assert!(out.mixed || out.clamped, "n = {n}: {out:?}");
        }
    }

    #[test]
    fn probe_is_deterministic_given_seed() {
        let cfg = BfceConfig::paper();
        let run = |seed| {
            let mut sys = system_with(30_000);
            let mut rng = StdRng::seed_from_u64(seed);
            run_probe(&cfg, &mut sys, &mut rng)
        };
        assert_eq!(run(42), run(42));
    }
}
