//! The paper's closed-form temporal overhead (Section IV-E1).
//!
//! With `w = 8192` and `k = 3` preloaded on tags, one BFCE round costs
//!
//! ```text
//! t1 = (3 l_R + l_p) t_r→t + t_int + 1024 t_t→r          (rough phase)
//! t2 = t_int + (3 l_R + l_p) t_r→t + t_int + 8192 t_t→r  (accurate phase)
//! t  = t1 + t2 = (6 l_R + 2 l_p) t_r→t + 3 t_int + 9216 t_t→r
//! ```
//!
//! which is **under 0.19 s** for 32-bit seeds and `p` — constant in both
//! the cardinality and the accuracy requirement. The probe stage is not
//! part of the paper's formula ("through several tests, we can get a valid
//! p_s quickly"); the simulator's ledger measures it anyway, and
//! [`nominal_total_us`] is the closed form for comparison.

use crate::params::BfceConfig;
use rfid_sim::Timing;

/// Closed-form air time of the rough phase (`t1`), in µs.
pub fn nominal_phase1_us(timing: &Timing, cfg: &BfceConfig) -> f64 {
    timing.reader_bits_us(cfg.phase_broadcast_bits())
        + timing.turnaround_us
        + timing.bitslots_us(cfg.rough_observe as u64)
}

/// Closed-form air time of the accurate phase (`t2`), in µs.
pub fn nominal_phase2_us(timing: &Timing, cfg: &BfceConfig) -> f64 {
    timing.turnaround_us
        + timing.reader_bits_us(cfg.phase_broadcast_bits())
        + timing.turnaround_us
        + timing.bitslots_us(cfg.w as u64)
}

/// Closed-form total (`t = t1 + t2`), in µs.
pub fn nominal_total_us(timing: &Timing, cfg: &BfceConfig) -> f64 {
    nominal_phase1_us(timing, cfg) + nominal_phase2_us(timing, cfg)
}

/// Closed-form total in seconds.
pub fn nominal_total_seconds(timing: &Timing, cfg: &BfceConfig) -> f64 {
    nominal_total_us(timing, cfg) / 1e6
}

/// The constant bit-slot budget of one BFCE round (paper: 1024 + 8192).
pub fn total_bit_slots(cfg: &BfceConfig) -> u64 {
    cfg.rough_observe as u64 + cfg.w as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_the_papers_expansion() {
        let t = Timing::c1g2();
        let cfg = BfceConfig::paper();
        let total = nominal_total_us(&t, &cfg);
        let paper = (6.0 * 32.0 + 2.0 * 32.0) * 37.76 + 3.0 * 302.0 + 9216.0 * 18.88;
        assert!((total - paper).abs() < 1e-9, "{total} vs {paper}");
    }

    #[test]
    fn headline_under_190_milliseconds() {
        let secs = nominal_total_seconds(&Timing::c1g2(), &BfceConfig::paper());
        assert!(secs < 0.19, "nominal = {secs}s");
        assert!(secs > 0.18, "suspiciously low: {secs}s");
    }

    #[test]
    fn slot_budget_is_9216() {
        assert_eq!(total_bit_slots(&BfceConfig::paper()), 9216);
    }

    #[test]
    fn phase2_dominates() {
        let t = Timing::c1g2();
        let cfg = BfceConfig::paper();
        assert!(nominal_phase2_us(&t, &cfg) > 4.0 * nominal_phase1_us(&t, &cfg));
    }

    #[test]
    fn overhead_is_independent_of_nothing_it_should_depend_on() {
        // Doubling w doubles phase-2 slot time; nothing else changes.
        let t = Timing::c1g2();
        let base = BfceConfig::paper();
        let wide = BfceConfig {
            w: 16_384,
            ..base
        };
        let delta = nominal_total_us(&t, &wide) - nominal_total_us(&t, &base);
        assert!((delta - 8192.0 * 18.88).abs() < 1e-6);
    }
}
