//! The analytical core: Theorems 1–4 of the BFCE paper plus the `gamma`
//! scalability analysis of Figure 4.
//!
//! With `n` tags, a `w`-slot Bloom vector, `k` hash functions and
//! persistence probability `p`, each slot is idle (paper: `B(i) = 1`) with
//! probability `e^(-lambda)`, `lambda = k p n / w` (Theorem 1). Inverting
//! the observed idle ratio `rho` gives the estimator
//! `n_hat = -w ln(rho) / (k p)` (Theorem 2). The `(epsilon, delta)`
//! guarantee holds when the normalized interval edges `f1`, `f2` clear the
//! two-sided normal bound `d` (Theorem 3), and since `f1`/`f2` are monotone
//! in `n` in the small-`p` regime, it suffices to check them at a lower
//! bound `n_low <= n` (Theorem 4) — which is how [`optimal_p`] picks the
//! minimal valid persistence numerator.

/// The denominator of BFCE persistence probabilities: `p = p_n / 1024`.
pub const P_GRID: u32 = 1024;

/// Theorem 1's load factor: `lambda = k p n / w`.
///
/// ```
/// use rfid_bfce::theory::lambda;
/// // The paper's worked point: n = 500k, p = 3/1024, w = 8192, k = 3.
/// let l = lambda(500_000.0, 8192, 3, 3.0 / 1024.0);
/// assert!((l - 0.5364).abs() < 1e-3);
/// ```
pub fn lambda(n: f64, w: usize, k: usize, p: f64) -> f64 {
    assert!(w > 0 && k > 0, "w and k must be positive");
    assert!(n >= 0.0, "n must be non-negative");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    k as f64 * p * n / w as f64
}

/// Expected idle ratio `E[rho] = e^(-lambda)` (Theorem 1).
pub fn expected_rho(lambda: f64) -> f64 {
    (-lambda).exp()
}

/// Standard deviation of the per-slot Bernoulli observation:
/// `sigma(X) = sqrt(e^(-lambda) (1 - e^(-lambda)))`.
pub fn sigma_x(lambda: f64) -> f64 {
    let r = expected_rho(lambda);
    (r * (1.0 - r)).sqrt()
}

/// Theorem 2's estimator: `n_hat = -w ln(rho) / (k p)`.
///
/// Panics when `rho` is 0 or 1 — the paper's "two exceptions we should
/// avoid" (an all-busy or all-idle vector carries no information); callers
/// are expected to detect degenerate frames first.
///
/// ```
/// use rfid_bfce::theory::{estimate_from_rho, expected_rho, lambda};
/// let (n, p) = (250_000.0, 6.0 / 1024.0);
/// let rho = expected_rho(lambda(n, 8192, 3, p));
/// let n_hat = estimate_from_rho(rho, 8192, 3, p);
/// assert!(((n_hat - n) / n).abs() < 1e-12); // exact at the expectation
/// ```
pub fn estimate_from_rho(rho: f64, w: usize, k: usize, p: f64) -> f64 {
    assert!(
        rho > 0.0 && rho < 1.0,
        "estimator undefined for degenerate rho = {rho}"
    );
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0, 1]");
    -(w as f64) * rho.ln() / (k as f64 * p)
}

/// Theorem 3's lower interval edge, as a function of the true cardinality:
/// `f1 = (e^(-lambda(1+eps)) - e^(-lambda)) / (sigma(X) / sqrt(w))`.
///
/// Always `<= 0`; the requirement is `f1 <= -d`. Returns NaN when
/// `sigma(X)` underflows to zero (extreme loads), which callers must treat
/// as "requirement not met" — all comparisons with NaN are false, so the
/// natural checks do the right thing.
pub fn f1(n: f64, w: usize, k: usize, p: f64, eps: f64) -> f64 {
    let l = lambda(n, w, k, p);
    let sigma = sigma_x(l);
    ((-(l * (1.0 + eps))).exp() - (-l).exp()) / (sigma / (w as f64).sqrt())
}

/// Theorem 3's upper interval edge:
/// `f2 = (e^(-lambda(1-eps)) - e^(-lambda)) / (sigma(X) / sqrt(w))`.
///
/// Always `>= 0`; the requirement is `f2 >= d`.
pub fn f2(n: f64, w: usize, k: usize, p: f64, eps: f64) -> f64 {
    let l = lambda(n, w, k, p);
    let sigma = sigma_x(l);
    ((-(l * (1.0 - eps))).exp() - (-l).exp()) / (sigma / (w as f64).sqrt())
}

/// Theorem 3's acceptance test: `f1 <= -d && f2 >= d`.
/// NaN-safe: degenerate loads fail the test.
pub fn meets_requirement(n: f64, w: usize, k: usize, p: f64, eps: f64, d: f64) -> bool {
    f1(n, w, k, p, eps) <= -d && f2(n, w, k, p, eps) >= d
}

/// The scalability kernel of Figure 4: `gamma = -ln(rho) / (k p)`, so that
/// `n_hat = gamma * w`.
pub fn gamma(rho: f64, k: usize, p: f64) -> f64 {
    assert!(rho > 0.0 && rho < 1.0, "gamma undefined for rho = {rho}");
    assert!(p > 0.0 && p <= 1.0, "p must lie in (0, 1]");
    -rho.ln() / (k as f64 * p)
}

/// Extremes of `gamma` over the paper's evaluation grid
/// `p, rho in {1/grid, ..., (grid-1)/grid}` — Figure 4 reports
/// `0.000326 <= gamma <= 2365.9` for `k = 3`, `grid = 1024`.
pub fn gamma_bounds(k: usize, grid: u32) -> (f64, f64) {
    assert!(grid >= 2, "grid must have at least two cells");
    // gamma is monotone in both arguments (decreasing in rho and p), so the
    // extremes sit at the grid corners; evaluate them directly.
    let lo = 1.0 / grid as f64;
    let hi = (grid - 1) as f64 / grid as f64;
    let min = gamma(hi, k, hi);
    let max = gamma(lo, k, lo);
    (min, max)
}

/// The maximum cardinality the estimator can express: `gamma_max * w`
/// (the paper: "exceeds 19 millions" for `w = 8192`).
pub fn max_cardinality(w: usize, k: usize, grid: u32) -> f64 {
    gamma_bounds(k, grid).1 * w as f64
}

/// Result of the brute-force persistence search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimalP {
    /// Minimal numerator that provably meets Theorem 3 at `n_low`.
    Provable(u32),
    /// No numerator satisfies Theorem 3 at `n_low` (possible for very small
    /// lower bounds); this is the numerator with the largest margin
    /// `min(-f1, f2)`, used best-effort with a warning.
    BestEffort(u32),
}

impl OptimalP {
    /// The chosen numerator, regardless of provability.
    pub fn numerator(&self) -> u32 {
        match *self {
            OptimalP::Provable(pn) | OptimalP::BestEffort(pn) => pn,
        }
    }

    /// Whether the accuracy requirement is provably met.
    pub fn is_provable(&self) -> bool {
        matches!(self, OptimalP::Provable(_))
    }
}

/// Section IV-D's brute-force search: the **minimal** `p_n` in
/// `[1, grid-1]` such that `f1(n_low) <= -d` and `f2(n_low) >= d`.
///
/// The paper argues minimality is safe because `f1`/`f2` are monotone in
/// `n` for small `p` (Theorem 4), and small `p` also minimizes tag energy.
///
/// ```
/// use rfid_bfce::theory::{optimal_p, OptimalP};
/// use rfid_stats::d_for_delta;
/// // The paper's example: n_low = 250k under (0.05, 0.05) -> p = 3/1024.
/// let p = optimal_p(250_000.0, 8192, 3, 0.05, d_for_delta(0.05), 1024);
/// assert_eq!(p, OptimalP::Provable(3));
/// ```
pub fn optimal_p(n_low: f64, w: usize, k: usize, eps: f64, d: f64, grid: u32) -> OptimalP {
    assert!(n_low >= 1.0, "n_low must be at least 1, got {n_low}");
    assert!(grid >= 2, "grid must have at least two cells");
    let mut best_pn = 1u32;
    let mut best_margin = f64::NEG_INFINITY;
    for pn in 1..grid {
        let p = pn as f64 / grid as f64;
        let a = f1(n_low, w, k, p, eps);
        let b = f2(n_low, w, k, p, eps);
        if a <= -d && b >= d {
            return OptimalP::Provable(pn);
        }
        let margin = (-a).min(b);
        if margin.is_finite() && margin > best_margin {
            best_margin = margin;
            best_pn = pn;
        }
    }
    OptimalP::BestEffort(best_pn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_stats::d_for_delta;

    const W: usize = 8192;
    const K: usize = 3;

    #[test]
    fn lambda_basics() {
        assert_eq!(lambda(0.0, W, K, 0.5), 0.0);
        let l = lambda(500_000.0, W, K, 3.0 / 1024.0);
        // 3 * (3/1024) * 5e5 / 8192 = 0.5364...
        assert!((l - 0.536_44).abs() < 1e-4, "lambda = {l}");
    }

    #[test]
    fn expected_rho_and_sigma() {
        assert_eq!(expected_rho(0.0), 1.0);
        assert!((expected_rho(1.0) - 0.367_879_441).abs() < 1e-9);
        assert_eq!(sigma_x(0.0), 0.0);
        // sigma is maximized when e^-lambda = 0.5, i.e. lambda = ln 2.
        let s = sigma_x(std::f64::consts::LN_2);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn estimator_inverts_the_expected_ratio() {
        // If rho equals its expectation exactly, the estimate is exact.
        for n in [1_000.0, 50_000.0, 500_000.0, 5_000_000.0] {
            let p = 3.0 / 1024.0;
            let rho = expected_rho(lambda(n, W, K, p));
            let n_hat = estimate_from_rho(rho, W, K, p);
            assert!(
                ((n_hat - n) / n).abs() < 1e-12,
                "round trip at n = {n}: {n_hat}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "degenerate rho")]
    fn estimator_rejects_all_idle() {
        estimate_from_rho(1.0, W, K, 0.5);
    }

    #[test]
    #[should_panic(expected = "degenerate rho")]
    fn estimator_rejects_all_busy() {
        estimate_from_rho(0.0, W, K, 0.5);
    }

    #[test]
    fn f1_is_nonpositive_and_f2_nonnegative() {
        for n in [1_000.0, 100_000.0, 1_000_000.0] {
            for pn in [1u32, 3, 10, 100, 500] {
                let p = pn as f64 / 1024.0;
                assert!(f1(n, W, K, p, 0.05) <= 0.0);
                assert!(f2(n, W, K, p, 0.05) >= 0.0);
            }
        }
    }

    #[test]
    fn figure_5_monotonicity_small_p() {
        // For p = 3/1024 (the paper's "small p" example), f1 decreases and
        // f2 increases in n across the evaluation range.
        let p = 3.0 / 1024.0;
        let mut prev_f1 = f64::INFINITY;
        let mut prev_f2 = f64::NEG_INFINITY;
        let mut n = 10_000.0;
        while n <= 1_000_000.0 {
            let a = f1(n, W, K, p, 0.05);
            let b = f2(n, W, K, p, 0.05);
            assert!(a < prev_f1, "f1 not decreasing at n = {n}");
            assert!(b > prev_f2, "f2 not increasing at n = {n}");
            prev_f1 = a;
            prev_f2 = b;
            n += 10_000.0;
        }
    }

    #[test]
    fn figure_4_gamma_bounds() {
        // Paper: 0.000326 <= gamma <= 2365.9 for k = 3 on the 1/1024 grid.
        let (min, max) = gamma_bounds(K, 1024);
        assert!((min - 0.000_326).abs() < 0.000_001, "min = {min}");
        assert!((max - 2365.9).abs() < 0.5, "max = {max}");
    }

    #[test]
    fn max_cardinality_exceeds_19_million() {
        // Paper: "the maximum cardinality that the estimator can estimate
        // exceeds 19 millions" at w = 8192.
        let cap = max_cardinality(W, K, 1024);
        assert!(cap > 19_000_000.0, "cap = {cap}");
        assert!(cap < 20_000_000.0, "cap = {cap}");
    }

    #[test]
    fn gamma_monotone_in_rho_and_p() {
        assert!(gamma(0.2, K, 0.5) > gamma(0.3, K, 0.5));
        assert!(gamma(0.2, K, 0.5) > gamma(0.2, K, 0.6));
    }

    #[test]
    fn optimal_p_reproduces_the_papers_example() {
        // Section IV-D: for large n the optimal p is small, "e.g.
        // p = 3/2^10". With n_low = 250000 (n = 500k, c = 0.5) and
        // (0.05, 0.05), the brute force must return exactly 3.
        let d = d_for_delta(0.05);
        let got = optimal_p(250_000.0, W, K, 0.05, d, 1024);
        assert_eq!(got, OptimalP::Provable(3));
    }

    #[test]
    fn optimal_p_scales_inversely_with_n_low() {
        let d = d_for_delta(0.05);
        let p_small = optimal_p(20_000.0, W, K, 0.05, d, 1024).numerator();
        let p_large = optimal_p(2_000_000.0, W, K, 0.05, d, 1024).numerator();
        assert!(p_small > p_large, "{p_small} vs {p_large}");
        assert_eq!(p_large, 1); // very large n: smallest numerator works
    }

    #[test]
    fn optimal_p_falls_back_for_tiny_lower_bounds() {
        // n_low = 100 cannot meet (0.05, 0.05) with w = 8192 at any p;
        // the search must degrade gracefully to a best-effort choice.
        let d = d_for_delta(0.05);
        let got = optimal_p(100.0, W, K, 0.05, d, 1024);
        assert!(!got.is_provable());
        // Larger persistence helps small populations; expect the cap region.
        assert!(got.numerator() > 900, "pn = {}", got.numerator());
    }

    #[test]
    fn provable_choice_actually_satisfies_theorem_3() {
        let d = d_for_delta(0.1);
        for n_low in [5_000.0, 50_000.0, 500_000.0] {
            if let OptimalP::Provable(pn) = optimal_p(n_low, W, K, 0.1, d, 1024) {
                let p = pn as f64 / 1024.0;
                assert!(meets_requirement(n_low, W, K, p, 0.1, d));
                // Minimality: pn - 1 must not satisfy.
                if pn > 1 {
                    let p_prev = (pn - 1) as f64 / 1024.0;
                    assert!(!meets_requirement(n_low, W, K, p_prev, 0.1, d));
                }
            } else {
                panic!("expected provable p for n_low = {n_low}");
            }
        }
    }

    #[test]
    fn theorem_4_substitution_is_safe() {
        // If the conditions hold at n_low with the minimal p, they hold at
        // every n in [n_low, 2 * n_low] (the design range for c = 0.5).
        let d = d_for_delta(0.05);
        let n_low = 250_000.0;
        let pn = optimal_p(n_low, W, K, 0.05, d, 1024).numerator();
        let p = pn as f64 / 1024.0;
        let mut n = n_low;
        while n <= 2.0 * n_low {
            assert!(
                meets_requirement(n, W, K, p, 0.05, d),
                "requirement broken at n = {n}"
            );
            n += 10_000.0;
        }
    }

    #[test]
    fn extreme_load_fails_requirement_without_nan_panics() {
        // lambda so large that sigma underflows: must simply return false.
        let d = d_for_delta(0.05);
        assert!(!meets_requirement(1e12, W, K, 1.0, 0.05, d));
    }
}
