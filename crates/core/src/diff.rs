//! Differential cardinality estimation — an extension beyond the paper.
//!
//! BFCE's tag-side behaviour is a *pure function* of the pre-stored `RN`,
//! the broadcast seeds, and the persistence numerator. If the reader
//! replays the **same** seeds and `p` across two inventory epochs, a tag
//! present in both epochs produces the identical response pattern, so any
//! per-slot difference between the two Bloom vectors is caused only by
//! tags that arrived or departed in between:
//!
//! * a slot **busy before ∧ idle after** must have been covered only by
//!   departed tags and by no current tag:
//!   `P = (1 − e^(−λ_dep)) · e^(−λ_after)`;
//! * symmetrically for **idle before ∧ busy after** and arrivals.
//!
//! Inverting with the frame's own idle ratio as the `e^(−λ)` estimate
//! gives closed-form arrival/departure counts from just **two** frames —
//! no tag identification, no extra rounds. Accuracy is relative to the
//! total population (the differences occupy few slots), so this is a
//! shrinkage detector, not a replacement for per-epoch estimation.

use crate::estimator::bloom_plan;
use crate::params::BfceConfig;
use crate::theory::P_GRID;
use rand::RngCore;
use rfid_sim::{BitFrame, RfidSystem};

/// Result of a differential estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOutcome {
    /// Estimated number of tags present before but gone after.
    pub departures: f64,
    /// Estimated number of tags present after but not before.
    pub arrivals: f64,
    /// Fraction of slots busy-before ∧ idle-after.
    pub rho_gone: f64,
    /// Fraction of slots idle-before ∧ busy-after.
    pub rho_new: f64,
    /// Idle ratio of the before-frame.
    pub rho_idle_before: f64,
    /// Idle ratio of the after-frame.
    pub rho_idle_after: f64,
    /// Non-fatal irregularities (degenerate or saturated ratios).
    pub warnings: Vec<String>,
}

/// Invert `1 − e^(−λ_x) = rho_x / rho_idle` into a count, clamping the
/// ratio into the invertible region and reporting whether clamping
/// happened.
fn invert_exclusive(
    rho_exclusive: f64,
    rho_idle: f64,
    w: usize,
    k: usize,
    p: f64,
) -> (f64, bool) {
    if rho_exclusive <= 0.0 {
        return (0.0, false);
    }
    let ratio = rho_exclusive / rho_idle;
    let max_ratio = 1.0 - 1.0 / w as f64;
    let clamped = ratio > max_ratio;
    let ratio = ratio.min(max_ratio);
    let lambda_x = -(1.0 - ratio).ln();
    (lambda_x * w as f64 / (k as f64 * p), clamped)
}

/// Run two same-seed Bloom frames (one per epoch) and estimate the set
/// difference between the populations.
///
/// Charges each system's own ledger for its frame (one broadcast plus `w`
/// bit-slots per epoch). `p_n` must keep both frames non-degenerate —
/// callers typically reuse the `p_s` a probe stage found for the larger
/// epoch, or the `p_o` of a preceding full estimation.
pub fn estimate_changes(
    cfg: &BfceConfig,
    before: &mut RfidSystem,
    after: &mut RfidSystem,
    p_n: u32,
    rng: &mut dyn RngCore,
) -> DiffOutcome {
    cfg.validate();
    assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
    let seeds: Vec<u32> = (0..cfg.k).map(|_| rng.next_u32()).collect();
    let plan = bloom_plan(cfg, &seeds, p_n);

    before.broadcast(cfg.phase_broadcast_bits());
    let frame_before = before.run_bitslot_frame(cfg.w, &plan);
    after.broadcast(cfg.phase_broadcast_bits());
    let frame_after = after.run_bitslot_frame(cfg.w, &plan);

    diff_from_frames(cfg, &frame_before, &frame_after, p_n)
}

/// Pure post-processing: differential estimates from two observed frames
/// that were produced with identical seeds and persistence.
pub fn diff_from_frames(
    cfg: &BfceConfig,
    before: &BitFrame,
    after: &BitFrame,
    p_n: u32,
) -> DiffOutcome {
    assert_eq!(
        before.observed(),
        after.observed(),
        "frames must observe the same slots"
    );
    let w = before.observed();
    let mut gone_slots = 0usize;
    let mut new_slots = 0usize;
    for i in 0..w {
        match (before.is_busy(i), after.is_busy(i)) {
            (true, false) => gone_slots += 1,
            (false, true) => new_slots += 1,
            _ => {}
        }
    }
    let rho_gone = gone_slots as f64 / w as f64;
    let rho_new = new_slots as f64 / w as f64;
    let rho_idle_before = before.rho();
    let rho_idle_after = after.rho();

    let mut warnings = Vec::new();
    let p = p_n as f64 / P_GRID as f64;
    let (departures, arrivals);
    if rho_idle_after <= 0.0 || rho_idle_before <= 0.0 {
        warnings.push("saturated frame; differential inversion unavailable".into());
        departures = f64::NAN;
        arrivals = f64::NAN;
    } else {
        let (dep, dep_clamped) =
            invert_exclusive(rho_gone, rho_idle_after, cfg.w, cfg.k, p);
        let (arr, arr_clamped) =
            invert_exclusive(rho_new, rho_idle_before, cfg.w, cfg.k, p);
        if dep_clamped || arr_clamped {
            warnings.push("exclusive-coverage ratio clamped (huge turnover)".into());
        }
        departures = dep;
        arrivals = arr;
    }

    DiffOutcome {
        departures,
        arrivals,
        rho_gone,
        rho_new,
        rho_idle_before,
        rho_idle_after,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn tag(i: u64) -> Tag {
        Tag {
            id: i + 1,
            rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(0x77),
        }
    }

    fn split_population(
        total: usize,
        departed: usize,
        arrived: usize,
    ) -> (RfidSystem, RfidSystem) {
        // Before: tags [0, total). After: tags [departed, total + arrived).
        let before: Vec<Tag> = (0..total as u64).map(tag).collect();
        let after: Vec<Tag> = (departed as u64..(total + arrived) as u64)
            .map(tag)
            .collect();
        (
            RfidSystem::new(TagPopulation::new(before)),
            RfidSystem::new(TagPopulation::new(after)),
        )
    }

    /// The persistence a real deployment would carry over from the main
    /// estimation: tuned for lambda ~ 1 at the before-population.
    fn tuned_pn(total: usize) -> u32 {
        let p = (8192.0 / (3.0 * total as f64)).min(0.999);
        ((p * 1024.0).round() as u32).clamp(1, 1023)
    }

    #[test]
    fn no_change_estimates_zero_exactly() {
        // Identical populations and identical seeds: the frames are
        // bit-identical, so both differential counts are exactly zero.
        let (mut before, mut after) = split_population(50_000, 0, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let out = estimate_changes(
            &BfceConfig::paper(),
            &mut before,
            &mut after,
            tuned_pn(50_000),
            &mut rng,
        );
        assert_eq!(out.departures, 0.0);
        assert_eq!(out.arrivals, 0.0);
        assert_eq!(out.rho_gone, 0.0);
        assert_eq!(out.rho_new, 0.0);
    }

    #[test]
    fn recovers_departures_and_arrivals() {
        let total = 100_000usize;
        let departed = 10_000usize;
        let arrived = 6_000usize;
        let (mut before, mut after) = split_population(total, departed, arrived);
        let mut rng = StdRng::seed_from_u64(2);
        let out = estimate_changes(
            &BfceConfig::paper(),
            &mut before,
            &mut after,
            tuned_pn(total),
            &mut rng,
        );
        let dep_err = (out.departures - departed as f64).abs() / departed as f64;
        let arr_err = (out.arrivals - arrived as f64).abs() / arrived as f64;
        assert!(dep_err < 0.15, "departures {} vs {departed}", out.departures);
        assert!(arr_err < 0.20, "arrivals {} vs {arrived}", out.arrivals);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);
    }

    #[test]
    fn pure_departures_leave_arrivals_at_zero() {
        let (mut before, mut after) = split_population(60_000, 6_000, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let out = estimate_changes(
            &BfceConfig::paper(),
            &mut before,
            &mut after,
            tuned_pn(60_000),
            &mut rng,
        );
        assert_eq!(out.arrivals, 0.0, "stayers replay identically");
        let dep_err = (out.departures - 6_000.0).abs() / 6_000.0;
        assert!(dep_err < 0.2, "departures {}", out.departures);
    }

    #[test]
    fn differential_cost_is_two_frames() {
        let (mut before, mut after) = split_population(10_000, 500, 500);
        let mut rng = StdRng::seed_from_u64(4);
        estimate_changes(
            &BfceConfig::paper(),
            &mut before,
            &mut after,
            tuned_pn(10_000),
            &mut rng,
        );
        assert_eq!(before.air_time().bitslots, 8192);
        assert_eq!(after.air_time().bitslots, 8192);
        assert_eq!(before.air_time().reader_bits, 128);
    }

    #[test]
    fn complete_turnover_clamps_with_warning() {
        // After-population entirely disjoint from before: the exclusive
        // ratio saturates and the inversion clamps.
        let before: Vec<Tag> = (0..20_000u64).map(tag).collect();
        let after: Vec<Tag> = (1_000_000..1_020_000u64).map(tag).collect();
        let mut sys_b = RfidSystem::new(TagPopulation::new(before));
        let mut sys_a = RfidSystem::new(TagPopulation::new(after));
        let mut rng = StdRng::seed_from_u64(5);
        let out = estimate_changes(
            &BfceConfig::paper(),
            &mut sys_b,
            &mut sys_a,
            1023,
            &mut rng,
        );
        // With p = 1023/1024 and n = 20k, lambda ~ 7.3: frames nearly
        // saturated; either path must degrade loudly, not silently.
        assert!(
            !out.warnings.is_empty() || out.departures > 5_000.0,
            "turnover vanished: {out:?}"
        );
    }

    #[test]
    fn diff_from_frames_checks_lengths() {
        let cfg = BfceConfig::paper();
        let (mut before, mut after) = split_population(1_000, 0, 0);
        let mut rng = StdRng::seed_from_u64(6);
        let seeds: Vec<u32> = (0..3).map(|_| rand::RngCore::next_u32(&mut rng)).collect();
        let plan_b = crate::estimator::bloom_plan(&cfg, &seeds, 100);
        let fb = before.run_bitslot_frame(8192, &plan_b);
        let fa = after.run_bitslot_frame_prefix(8192, 1024, &plan_b);
        let result = std::panic::catch_unwind(|| {
            diff_from_frames(&cfg, &fb, &fa, 100)
        });
        assert!(result.is_err(), "mismatched frames must be rejected");
    }
}
