//! Union-cardinality estimation from merged Bloom frames — an extension
//! beyond the paper.
//!
//! The paper reduces multi-reader deployments to one logical reader by
//! assuming the back-end synchronizes every broadcast (Section III-A).
//! That synchrony is not actually necessary: if every reader independently
//! runs a Bloom frame with the **same seeds and persistence** (shipped
//! once over Ethernet), a tag covered by several readers produces the
//! identical response pattern in each of their frames. The slot-wise OR
//! of the busy vectors is therefore *exactly* the frame the union
//! population would have produced for one reader, and Theorem 2 inverts
//! it directly — each tag counted once, however many readers cover it.
//!
//! This turns BFCE into a distributed protocol: readers sense their own
//! w-slot frames in parallel (no inter-reader timing coordination), the
//! back-end ORs `R` bitmaps and runs one `ln`.

use crate::params::BfceConfig;
use crate::theory::{estimate_from_rho, P_GRID};
use rfid_sim::{BitFrame, Bitmap};

/// Result of a merged-frame union estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionOutcome {
    /// Estimated cardinality of the union of all coverages.
    pub n_hat: f64,
    /// Idle ratio of the merged frame.
    pub rho: f64,
    /// Per-input idle ratios (diagnostics).
    pub input_rhos: Vec<f64>,
    /// Non-fatal irregularities.
    pub warnings: Vec<String>,
}

/// Merge per-reader frames (same seeds, same `p_n`, fully observed) and
/// estimate the union cardinality.
///
/// Panics if the frames disagree on length or if none are provided.
pub fn estimate_union(
    cfg: &BfceConfig,
    frames: &[BitFrame],
    p_n: u32,
) -> UnionOutcome {
    cfg.validate();
    assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
    assert!(!frames.is_empty(), "need at least one frame");
    let w = frames[0].observed();
    assert_eq!(w, cfg.w, "frames must observe all w slots");

    let mut merged = Bitmap::zeros(w);
    let mut input_rhos = Vec::with_capacity(frames.len());
    for frame in frames {
        // analysis:allow(panic-path): documented input-validation panic; every frame must be checked, which needs the loop
        assert_eq!(
            frame.observed(),
            w,
            "all frames must observe the same slots"
        );
        merged.or_assign(frame.busy_bitmap());
        input_rhos.push(frame.rho());
    }

    let idle = w - merged.count_ones();
    let rho = idle as f64 / w as f64;
    let p = p_n as f64 / P_GRID as f64;
    let mut warnings = Vec::new();
    let n_hat = if rho <= 0.0 {
        warnings.push("merged frame saturated; union under-estimated".into());
        estimate_from_rho(1.0 / w as f64, cfg.w, cfg.k, p)
    } else if rho >= 1.0 {
        0.0
    } else {
        estimate_from_rho(rho, cfg.w, cfg.k, p)
    };

    UnionOutcome {
        n_hat,
        rho,
        input_rhos,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::bloom_plan;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use rfid_sim::{RfidSystem, Tag, TagPopulation};

    fn tag(i: u64) -> Tag {
        Tag {
            id: i + 1,
            rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(0xAB),
        }
    }

    fn frame_for(
        tags: Vec<Tag>,
        seeds: &[u32],
        p_n: u32,
        cfg: &BfceConfig,
    ) -> BitFrame {
        let mut system = RfidSystem::new(TagPopulation::new(tags));
        let plan = bloom_plan(cfg, seeds, p_n);
        system.run_bitslot_frame(cfg.w, &plan)
    }

    fn seeds(seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..3).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn merged_frames_equal_the_union_frame_exactly() {
        // Three overlapping coverages; the OR of their frames must be
        // bit-identical to the frame of the union population.
        let cfg = BfceConfig::paper();
        let s = seeds(1);
        let p_n = 40u32;
        let a: Vec<Tag> = (0..30_000).map(tag).collect();
        let b: Vec<Tag> = (20_000..60_000).map(tag).collect();
        let c: Vec<Tag> = (50_000..80_000).map(tag).collect();
        let union: Vec<Tag> = (0..80_000).map(tag).collect();

        let fa = frame_for(a, &s, p_n, &cfg);
        let fb = frame_for(b, &s, p_n, &cfg);
        let fc = frame_for(c, &s, p_n, &cfg);
        let fu = frame_for(union, &s, p_n, &cfg);

        let mut merged = Bitmap::zeros(cfg.w);
        merged.or_assign(fa.busy_bitmap());
        merged.or_assign(fb.busy_bitmap());
        merged.or_assign(fc.busy_bitmap());
        assert_eq!(&merged, fu.busy_bitmap());
    }

    #[test]
    fn union_estimate_counts_shared_tags_once() {
        let cfg = BfceConfig::paper();
        let s = seeds(2);
        let p_n = 35u32; // lambda ~ 1 for the 80k union
        let a: Vec<Tag> = (0..50_000).map(tag).collect();
        let b: Vec<Tag> = (30_000..80_000).map(tag).collect();
        let fa = frame_for(a, &s, p_n, &cfg);
        let fb = frame_for(b, &s, p_n, &cfg);
        let out = estimate_union(&cfg, &[fa, fb], p_n);
        let union = 80_000.0;
        let rel = (out.n_hat - union).abs() / union;
        assert!(rel < 0.05, "union estimate {} (rel {rel})", out.n_hat);
        // The naive sum of coverages (100k) must be clearly rejected.
        assert!((out.n_hat - 100_000.0).abs() / 100_000.0 > 0.1);
        assert!(out.warnings.is_empty());
        assert_eq!(out.input_rhos.len(), 2);
    }

    #[test]
    fn single_frame_degenerates_to_plain_estimation() {
        let cfg = BfceConfig::paper();
        let s = seeds(3);
        let p_n = 60u32;
        let tags: Vec<Tag> = (0..40_000).map(tag).collect();
        let frame = frame_for(tags, &s, p_n, &cfg);
        let direct = estimate_from_rho(frame.rho(), cfg.w, cfg.k, 60.0 / 1024.0);
        let out = estimate_union(&cfg, &[frame], p_n);
        assert!((out.n_hat - direct).abs() < 1e-9);
    }

    #[test]
    fn empty_union_estimates_zero() {
        let cfg = BfceConfig::paper();
        let s = seeds(4);
        let fa = frame_for(vec![], &s, 100, &cfg);
        let fb = frame_for(vec![], &s, 100, &cfg);
        let out = estimate_union(&cfg, &[fa, fb], 100);
        assert_eq!(out.n_hat, 0.0);
        assert_eq!(out.rho, 1.0);
    }

    #[test]
    #[should_panic(expected = "need at least one frame")]
    fn no_frames_rejected() {
        estimate_union(&BfceConfig::paper(), &[], 10);
    }

    #[test]
    #[should_panic(expected = "frames must observe all w slots")]
    fn truncated_frames_rejected() {
        let cfg = BfceConfig::paper();
        let s = seeds(5);
        let mut system =
            RfidSystem::new(TagPopulation::new((0..100).map(tag).collect()));
        let plan = bloom_plan(&cfg, &s, 10);
        let partial = system.run_bitslot_frame_prefix(cfg.w, 1024, &plan);
        estimate_union(&cfg, &[partial], 10);
    }
}
