//! **BFCE** — the Bloom-Filter-based Cardinality Estimator of
//! *"Towards Constant-Time Cardinality Estimation for Large-Scale RFID
//! Systems"* (ICPP 2015).
//!
//! BFCE estimates the number of tags in a reader's range in a **constant**
//! number of bit-slots (1024 + 8192 in one round), regardless of the actual
//! cardinality, while provably meeting an `(epsilon, delta)` accuracy
//! requirement. The protocol has three stages:
//!
//! 1. **Probe** ([`probe`]) — find a *valid* persistence probability `p_s`:
//!    starting from `p_s = 8/1024`, watch 32 bit-slots; if all are idle,
//!    raise `p_s` by `2/1024`; if all are busy, lower it by `1/1024`; stop
//!    as soon as the window is mixed (Section IV-C).
//! 2. **Rough lower bound** ([`rough`]) — run one Bloom-filter frame with
//!    `p_s`, terminate after observing 1024 of the `w = 8192` slots, and
//!    estimate `n_r` from the idle ratio (Theorem 2); the lower bound is
//!    `n_low = c * n_r` with `c = 0.5`.
//! 3. **Accurate** ([`accurate`]) — brute-force the minimal persistence
//!    numerator `p_n` in `[1, 1023]` such that `f1(n_low) <= -d` and
//!    `f2(n_low) >= d` (Theorems 3 and 4, `d = sqrt(2) erfinv(1-delta)`),
//!    then run one full 8192-slot frame and report
//!    `n_hat = -w ln(rho) / (k p)`.
//!
//! The analytical machinery (Theorems 1–4, the `gamma` scalability bounds
//! of Figure 4, the closed-form overhead of Section IV-E1) lives in
//! [`theory`] and [`overhead`]; [`Bfce`] in [`estimator`] is the driver
//! implementing [`rfid_sim::CardinalityEstimator`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accurate;
pub mod diff;
pub mod efficiency;
pub mod estimator;
pub mod multiset;
pub mod overhead;
pub mod params;
pub mod probe;
pub mod rough;
pub mod sketch;
pub mod theory;

pub use diff::{estimate_changes, DiffOutcome};
pub use efficiency::{confidence_interval, crlb, ConfidenceInterval};
pub use estimator::{Bfce, BfceRun, BloomPlan};
pub use multiset::{estimate_union, UnionOutcome};
pub use params::{BfceConfig, HasherKind};
pub use sketch::{
    merge_all, AnySnapshot, BloomSketch, RegisterFlavor, RegisterSketch, SketchError, SketchKind,
    Snapshot, WireError,
};
pub use theory::{estimate_from_rho, f1, f2, gamma, lambda};
