//! The rough lower-bound stage (Section IV-C).
//!
//! With the probe-validated `p_s`, the reader starts a fresh Bloom frame
//! (new seeds, so the rough observation is independent of the probe) and
//! terminates it after observing `rough_observe = 1024` of the `w = 8192`
//! bit-slots. Because the hashes are uniform, the idle ratio of the
//! observed prefix has the same expectation as the full frame's, so
//! Theorem 2 applied with `w = 8192` yields the rough estimate `n_r`, and
//! the lower bound is `n_low = c * n_r` with `c = 0.5`.

use crate::estimator::bloom_plan;
use crate::params::BfceConfig;
use crate::theory::{estimate_from_rho, P_GRID};
use rand::RngCore;
use rfid_sim::RfidSystem;

/// A degenerate frame observation — the "two exceptions" of Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDegeneracy {
    /// Every observed slot was idle (`rho = 1`): the population is empty or
    /// far too small for the current persistence.
    AllIdle,
    /// Every observed slot was busy (`rho = 0`): the load saturated the
    /// observation window.
    AllBusy,
}

/// What the rough stage produced.
#[derive(Debug, Clone, PartialEq)]
pub struct RoughOutcome {
    /// Persistence numerator used (from the probe stage).
    pub p_n: u32,
    /// Observed idle ratio over the `rough_observe` prefix.
    pub rho: f64,
    /// The rough estimate `n_r` (Theorem 2; 0 when all slots were idle).
    pub n_r: f64,
    /// The lower bound `n_low = c * n_r` handed to the accurate stage.
    pub n_low: f64,
    /// Set when the observation was degenerate.
    pub degenerate: Option<FrameDegeneracy>,
}

/// Run the rough stage, charging all traffic to the system's ledger.
pub fn run_rough(
    cfg: &BfceConfig,
    system: &mut RfidSystem,
    p_n: u32,
    rng: &mut dyn RngCore,
) -> RoughOutcome {
    cfg.validate();
    assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
    let seeds: Vec<u32> = (0..cfg.k).map(|_| rng.next_u32()).collect();

    // Phase boundary: slots of the previous stage -> this broadcast.
    system.turnaround();
    system.broadcast(cfg.phase_broadcast_bits());
    let plan = bloom_plan(cfg, &seeds, p_n);
    let frame = system.run_bitslot_frame_prefix(cfg.w, cfg.rough_observe, &plan);

    let p = p_n as f64 / P_GRID as f64;
    let rho = frame.rho();
    let (n_r, degenerate) = if rho >= 1.0 {
        // No tag spoke: nothing to invert, rough estimate is zero.
        (0.0, Some(FrameDegeneracy::AllIdle))
    } else if rho <= 0.0 {
        // Saturated: clamp to "one idle slot" for a usable lower-ish bound.
        let clamped = 1.0 / cfg.rough_observe as f64;
        (
            estimate_from_rho(clamped, cfg.w, cfg.k, p),
            Some(FrameDegeneracy::AllBusy),
        )
    } else {
        (estimate_from_rho(rho, cfg.w, cfg.k, p), None)
    };

    let n_low = if n_r > 0.0 { (cfg.c * n_r).max(1.0) } else { 0.0 };
    RoughOutcome {
        p_n,
        rho,
        n_r,
        n_low,
        degenerate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(0xBEEF),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn rough_estimate_lands_near_truth() {
        // n = 500k with the probe's typical p = 8/1024: lambda ~ 1.43.
        let mut sys = system_with(500_000);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_rough(&BfceConfig::paper(), &mut sys, 8, &mut rng);
        assert!(out.degenerate.is_none(), "{out:?}");
        let rel = (out.n_r - 500_000.0).abs() / 500_000.0;
        // 1024 observations: sigma of n_r is a few percent.
        assert!(rel < 0.2, "n_r = {} ({rel})", out.n_r);
        // And the half lower bound must actually lower-bound the truth.
        assert!(out.n_low <= 500_000.0);
        assert!(out.n_low >= 1.0);
        assert!((out.n_low - 0.5 * out.n_r).abs() < 1e-9);
    }

    #[test]
    fn empty_population_reports_all_idle() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_rough(&BfceConfig::paper(), &mut sys, 8, &mut rng);
        assert_eq!(out.degenerate, Some(FrameDegeneracy::AllIdle));
        assert_eq!(out.n_r, 0.0);
        assert_eq!(out.n_low, 0.0);
        assert_eq!(out.rho, 1.0);
    }

    #[test]
    fn saturated_frame_reports_all_busy_with_clamped_estimate() {
        // 10M tags at p = 1023/1024 saturates every slot.
        let mut sys = system_with(2_000_000);
        let mut rng = StdRng::seed_from_u64(3);
        let out = run_rough(&BfceConfig::paper(), &mut sys, 1023, &mut rng);
        assert_eq!(out.degenerate, Some(FrameDegeneracy::AllBusy));
        assert!(out.n_r > 0.0);
        assert!(out.n_low >= 1.0);
    }

    #[test]
    fn rough_charges_1024_slots_and_128_bits() {
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(4);
        run_rough(&BfceConfig::paper(), &mut sys, 8, &mut rng);
        let air = sys.air_time();
        assert_eq!(air.bitslots, 1024);
        assert_eq!(air.reader_bits, 128);
        // turnaround before broadcast + broadcast's own trailing gap.
        assert_eq!(air.gaps, 2);
    }

    #[test]
    #[should_panic(expected = "p_n must lie in [1, 1023]")]
    fn rejects_zero_numerator() {
        let mut sys = system_with(10);
        let mut rng = StdRng::seed_from_u64(5);
        run_rough(&BfceConfig::paper(), &mut sys, 0, &mut rng);
    }

    #[test]
    fn smaller_c_gives_smaller_lower_bound() {
        let run_with_c = |c: f64| {
            let cfg = BfceConfig {
                c,
                ..BfceConfig::paper()
            };
            let mut sys = system_with(200_000);
            let mut rng = StdRng::seed_from_u64(6);
            run_rough(&cfg, &mut sys, 8, &mut rng).n_low
        };
        assert!(run_with_c(0.1) < run_with_c(0.9));
    }
}
