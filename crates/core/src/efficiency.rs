//! Statistical efficiency: how close BFCE gets to the Cramér–Rao bound,
//! and delta-method confidence intervals around its estimates.
//!
//! The accurate phase observes `w` i.i.d. Bernoulli slots with idle
//! probability `q(n) = e^(-λ)`, `λ = k p n / w`. The per-slot Fisher
//! information about `n` is
//!
//! ```text
//! I₁(n) = (dq/dn)² / (q (1 - q)) = (kp/w)² e^(-2λ) / (e^(-λ)(1 - e^(-λ)))
//! ```
//!
//! so any unbiased estimator obeys `Var(n̂) ≥ 1 / (w · I₁(n))` (the CRLB).
//! The idle-ratio inversion `n̂ = -w ln ρ̄ /(kp)` is the *maximum
//! likelihood* estimator of `n` for this model (the busy count is a
//! sufficient statistic), so it is asymptotically efficient — its
//! delta-method variance **equals** the bound:
//!
//! ```text
//! Var(n̂) ≈ (dn/dq)² · Var(ρ̄) = (w/(kp))² · (e^λ - 1)/w = CRLB.
//! ```
//!
//! That identity is what makes the whole design work: once `p` is tuned,
//! no cleverer post-processing of the same frame could beat the paper's
//! one-line estimator. [`crlb`], [`estimator_std`] and
//! [`confidence_interval`] expose the machinery; the `efficiency` tests
//! check the empirical variance against the bound.

use crate::theory::{lambda, P_GRID};

/// Per-slot Fisher information about `n` at the given operating point.
pub fn fisher_information_per_slot(n: f64, w: usize, k: usize, p: f64) -> f64 {
    assert!(n > 0.0, "n must be positive");
    let l = lambda(n, w, k, p);
    let q = (-l).exp();
    let dq_dn = -(k as f64 * p / w as f64) * q;
    dq_dn * dq_dn / (q * (1.0 - q)).max(f64::MIN_POSITIVE)
}

/// The Cramér–Rao lower bound on `Var(n̂)` for a `w`-slot frame.
pub fn crlb(n: f64, w: usize, k: usize, p: f64) -> f64 {
    1.0 / (w as f64 * fisher_information_per_slot(n, w, k, p))
}

/// Delta-method standard deviation of the idle-ratio estimator — equal to
/// `sqrt(CRLB)` (the estimator is the MLE): `(w/(kp)) sqrt((e^λ - 1)/w)`.
pub fn estimator_std(n: f64, w: usize, k: usize, p: f64) -> f64 {
    let l = lambda(n, w, k, p);
    (w as f64 / (k as f64 * p)) * ((l.exp() - 1.0) / w as f64).sqrt()
}

/// A two-sided confidence interval around an estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint (clamped at 0).
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// The standard deviation used.
    pub std: f64,
}

/// Delta-method `(1 - delta)` confidence interval around `n_hat`, given
/// the persistence numerator the frame ran with.
pub fn confidence_interval(
    n_hat: f64,
    w: usize,
    k: usize,
    p_n: u32,
    delta: f64,
) -> ConfidenceInterval {
    assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
    assert!(n_hat >= 0.0, "n_hat must be non-negative");
    let p = p_n as f64 / P_GRID as f64;
    let std = if n_hat > 0.0 {
        estimator_std(n_hat, w, k, p)
    } else {
        0.0
    };
    let d = rfid_stats::d_for_delta(delta);
    ConfidenceInterval {
        lo: (n_hat - d * std).max(0.0),
        hi: n_hat + d * std,
        std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::standalone_frame;
    use crate::theory::estimate_from_rho;
    use crate::BfceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{RfidSystem, Tag, TagPopulation};
    use rfid_stats::RunningStats;

    const W: usize = 8192;
    const K: usize = 3;

    #[test]
    fn delta_method_std_equals_sqrt_crlb() {
        // The MLE identity, checked numerically across operating points.
        for n in [10_000.0, 100_000.0, 1_000_000.0] {
            for pn in [3u32, 20, 100] {
                let p = pn as f64 / 1024.0;
                let a = estimator_std(n, W, K, p);
                let b = crlb(n, W, K, p).sqrt();
                assert!(
                    ((a - b) / b).abs() < 1e-9,
                    "n={n} p={p}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn crlb_is_minimized_near_the_classic_load() {
        // (e^lambda - 1)/lambda^2 is minimized at lambda ~ 1.594: relative
        // std sqrt(CRLB)/n is best there.
        let n = 200_000.0;
        let rel_std = |lambda_target: f64| {
            let p = lambda_target * W as f64 / (K as f64 * n);
            estimator_std(n, W, K, p) / n
        };
        let at_opt = rel_std(1.594);
        assert!(rel_std(0.4) > at_opt);
        assert!(rel_std(4.0) > at_opt);
    }

    /// Genuinely random RNs (as deployed populations have).
    ///
    /// Structured assignments like `i * odd_constant` equidistribute the
    /// low 13 bits, which makes every slot's coverage count nearly
    /// deterministic instead of binomial and biases the idle probability
    /// from `E[(1-p)^M] ~ e^(-lambda)` down to `(1-p)^(E[M]) ~
    /// e^(-lambda(1+p/2))` (Jensen) — a `p/2` relative overestimate of
    /// `n`. The XOR-bitget design *requires* random RNs; see also
    /// `tests/adversarial.rs`.
    fn random_rn(i: u64, seed: u64) -> u32 {
        rfid_hash::mix_pair(i, seed) as u32
    }

    #[test]
    fn empirical_variance_matches_the_bound() {
        // 80 independent frames at a fixed operating point: the sample std
        // of the estimates must sit within ~25% of sqrt(CRLB) (the
        // estimator is efficient; sample-std noise at R=80 is ~8%).
        let truth = 100_000usize;
        let p_n = 45u32; // lambda ~ 1.6
        let cfg = BfceConfig::paper();
        let p = p_n as f64 / 1024.0;
        let mut stats = RunningStats::new();
        for seed in 0..80u64 {
            let tags: Vec<Tag> = (0..truth as u64)
                .map(|i| Tag {
                    id: i + 1,
                    rn: random_rn(i, seed),
                })
                .collect();
            let mut system = RfidSystem::new(TagPopulation::new(tags));
            let mut rng = StdRng::seed_from_u64(seed * 31 + 7);
            let frame = standalone_frame(&cfg, &mut system, p_n, &mut rng);
            stats.push(estimate_from_rho(frame.rho(), cfg.w, cfg.k, p));
        }
        let predicted = estimator_std(truth as f64, W, K, p);
        let measured = stats.std();
        let ratio = measured / predicted;
        assert!(
            (0.75..1.35).contains(&ratio),
            "measured std {measured} vs CRLB {predicted} (ratio {ratio})"
        );
        // And the mean is unbiased to within a couple of standard errors.
        let se = predicted / (80f64).sqrt();
        assert!(
            (stats.mean() - truth as f64).abs() < 4.0 * se,
            "mean {} vs {truth}",
            stats.mean()
        );
    }

    #[test]
    fn confidence_interval_brackets_and_scales() {
        let ci_tight = confidence_interval(500_000.0, W, K, 3, 0.05);
        assert!(ci_tight.lo < 500_000.0 && 500_000.0 < ci_tight.hi);
        let ci_loose = confidence_interval(500_000.0, W, K, 3, 0.3);
        assert!(ci_loose.hi - ci_loose.lo < ci_tight.hi - ci_tight.lo);
        // Zero estimate: degenerate interval at zero.
        let ci_zero = confidence_interval(0.0, W, K, 3, 0.05);
        assert_eq!(ci_zero.lo, 0.0);
        assert_eq!(ci_zero.hi, 0.0);
    }

    #[test]
    fn empirical_coverage_matches_delta() {
        // Over 80 frames, the 90% CI must cover the truth ~90% of the time
        // (allow the binomial wobble of 80 trials).
        let truth = 60_000usize;
        let p_n = 75u32;
        let cfg = BfceConfig::paper();
        let p = p_n as f64 / 1024.0;
        let mut covered = 0u32;
        let rounds = 80u64;
        for seed in 0..rounds {
            let tags: Vec<Tag> = (0..truth as u64)
                .map(|i| Tag {
                    id: i + 1,
                    rn: random_rn(i, seed ^ 0xABCD),
                })
                .collect();
            let mut system = RfidSystem::new(TagPopulation::new(tags));
            let mut rng = StdRng::seed_from_u64(seed * 131 + 3);
            let frame = standalone_frame(&cfg, &mut system, p_n, &mut rng);
            let n_hat = estimate_from_rho(frame.rho(), cfg.w, cfg.k, p);
            let ci = confidence_interval(n_hat, cfg.w, cfg.k, p_n, 0.10);
            if ci.lo <= truth as f64 && truth as f64 <= ci.hi {
                covered += 1;
            }
        }
        let coverage = covered as f64 / rounds as f64;
        assert!(
            (0.80..=1.0).contains(&coverage),
            "90% CI covered {coverage}"
        );
    }
}
