//! The final accurate stage (Section IV-D).
//!
//! Given the rough lower bound `n_low`, the reader brute-forces the minimal
//! persistence numerator `p_n` in `[1, 1023]` whose `(f1, f2)` clear the
//! normal bound `d` *at `n_low`* — safe for the true `n >= n_low` by the
//! monotonicity of Theorem 4 — then runs one full `w = 8192`-slot Bloom
//! frame and inverts the observed idle ratio (Theorem 2). One frame, no
//! repetition: this is where the constant-time property comes from.

use crate::estimator::bloom_plan;
use crate::params::BfceConfig;
use crate::rough::FrameDegeneracy;
use crate::theory::{estimate_from_rho, optimal_p, OptimalP, P_GRID};
use rand::RngCore;
use rfid_sim::{Accuracy, RfidSystem};
use rfid_stats::d_for_delta;

/// What the accurate stage produced.
#[derive(Debug, Clone, PartialEq)]
pub struct AccurateOutcome {
    /// The persistence numerator used: `p_o = p_n / 1024`.
    pub p_n: u32,
    /// Whether that numerator provably meets Theorem 3 at `n_low`.
    pub provable: bool,
    /// Observed idle ratio over the full frame.
    pub rho: f64,
    /// The final estimate `n_hat`.
    pub n_hat: f64,
    /// Set when the observation was degenerate.
    pub degenerate: Option<FrameDegeneracy>,
}

/// Choose `p_o` for a lower bound (Section IV-D's brute force), falling
/// back to the largest-margin numerator when no provable one exists (tiny
/// `n_low`, below the estimator's design range).
pub fn choose_p(cfg: &BfceConfig, n_low: f64, accuracy: Accuracy) -> OptimalP {
    let d = d_for_delta(accuracy.delta);
    // Guard the theory-level precondition: anything below one tag is
    // handled as "no information" by the caller.
    optimal_p(n_low.max(1.0), cfg.w, cfg.k, accuracy.epsilon, d, P_GRID)
}

/// Run the accurate stage, charging all traffic to the system's ledger.
pub fn run_accurate(
    cfg: &BfceConfig,
    system: &mut RfidSystem,
    n_low: f64,
    accuracy: Accuracy,
    rng: &mut dyn RngCore,
) -> AccurateOutcome {
    cfg.validate();
    let choice = choose_p(cfg, n_low, accuracy);
    let p_n = choice.numerator();
    let p = p_n as f64 / P_GRID as f64;
    let seeds: Vec<u32> = (0..cfg.k).map(|_| rng.next_u32()).collect();

    // Phase boundary turnaround, then the parameter broadcast.
    system.turnaround();
    system.broadcast(cfg.phase_broadcast_bits());
    let plan = bloom_plan(cfg, &seeds, p_n);
    let frame = system.run_bitslot_frame(cfg.w, &plan);

    let rho = frame.rho();
    let (n_hat, degenerate) = if rho >= 1.0 {
        (0.0, Some(FrameDegeneracy::AllIdle))
    } else if rho <= 0.0 {
        let clamped = 1.0 / cfg.w as f64;
        (
            estimate_from_rho(clamped, cfg.w, cfg.k, p),
            Some(FrameDegeneracy::AllBusy),
        )
    } else {
        (estimate_from_rho(rho, cfg.w, cfg.k, p), None)
    };

    AccurateOutcome {
        p_n,
        provable: choice.is_provable(),
        rho,
        n_hat,
        degenerate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::{Tag, TagPopulation};

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(0xACE1),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn accurate_estimate_meets_paper_default_accuracy() {
        let truth = 500_000usize;
        let mut sys = system_with(truth);
        let mut rng = StdRng::seed_from_u64(1);
        let out = run_accurate(
            &BfceConfig::paper(),
            &mut sys,
            250_000.0,
            Accuracy::paper_default(),
            &mut rng,
        );
        assert!(out.provable);
        assert_eq!(out.p_n, 3, "paper's worked example");
        assert!(out.degenerate.is_none());
        let rel = (out.n_hat - truth as f64).abs() / truth as f64;
        assert!(rel < 0.05, "n_hat = {} ({rel})", out.n_hat);
    }

    #[test]
    fn tiny_lower_bound_falls_back_to_best_effort() {
        let mut sys = system_with(1_000);
        let mut rng = StdRng::seed_from_u64(2);
        let out = run_accurate(
            &BfceConfig::paper(),
            &mut sys,
            500.0,
            Accuracy::paper_default(),
            &mut rng,
        );
        assert!(!out.provable);
        // Best-effort still estimates well for n = 1000 (Figure 7a shows
        // accuracy near zero at the small end).
        let rel = (out.n_hat - 1_000.0).abs() / 1_000.0;
        assert!(rel < 0.15, "n_hat = {}", out.n_hat);
    }

    #[test]
    fn accurate_charges_full_frame() {
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(3);
        run_accurate(
            &BfceConfig::paper(),
            &mut sys,
            50_000.0,
            Accuracy::paper_default(),
            &mut rng,
        );
        let air = sys.air_time();
        assert_eq!(air.bitslots, 8192);
        assert_eq!(air.reader_bits, 128);
        assert_eq!(air.gaps, 2);
    }

    #[test]
    fn empty_population_yields_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(4);
        let out = run_accurate(
            &BfceConfig::paper(),
            &mut sys,
            1.0,
            Accuracy::paper_default(),
            &mut rng,
        );
        assert_eq!(out.n_hat, 0.0);
        assert_eq!(out.degenerate, Some(FrameDegeneracy::AllIdle));
    }

    #[test]
    fn choose_p_is_looser_for_looser_requirements() {
        let cfg = BfceConfig::paper();
        let tight = choose_p(&cfg, 100_000.0, Accuracy::new(0.05, 0.05));
        let loose = choose_p(&cfg, 100_000.0, Accuracy::new(0.3, 0.3));
        assert!(tight.is_provable() && loose.is_provable());
        assert!(loose.numerator() <= tight.numerator());
    }

    #[test]
    fn estimates_are_reproducible_per_seed() {
        let run = |seed| {
            let mut sys = system_with(80_000);
            let mut rng = StdRng::seed_from_u64(seed);
            run_accurate(
                &BfceConfig::paper(),
                &mut sys,
                40_000.0,
                Accuracy::paper_default(),
                &mut rng,
            )
            .n_hat
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
