//! The BFCE driver: probe → rough → accurate, with full air-time
//! attribution.

use crate::accurate::{run_accurate, AccurateOutcome};
use crate::params::{BfceConfig, HasherKind};
use crate::probe::{run_probe, ProbeOutcome};
use crate::rough::{run_rough, FrameDegeneracy, RoughOutcome};
use crate::theory::P_GRID;
use rand::RngCore;
use rfid_hash::mix::{bucket, mix_pair};
use rfid_hash::PersistenceSampler;
use rfid_sim::{
    Accuracy, CardinalityEstimator, EstimationReport, PhaseReport, ResponsePlan, RfidSystem,
    SlotSink, Tag,
};

/// The per-tag response plan for one Bloom frame: hash into `k` slots via
/// the configured hasher and answer each with probability `p_n / 1024`
/// using the lightweight persistence sampler of Section IV-E3.
/// Deterministic per tag, so parallel frame fills are exact.
#[derive(Debug, Clone, Copy)]
pub struct BloomPlan<'a> {
    cfg: &'a BfceConfig,
    seeds: &'a [u32],
    p_n: u32,
}

impl<'a> BloomPlan<'a> {
    /// Plan for one frame of `cfg.w` slots with the given per-seed hash
    /// seeds and persistence numerator `p_n` (out of 1024).
    pub fn new(cfg: &'a BfceConfig, seeds: &'a [u32], p_n: u32) -> Self {
        assert!(!seeds.is_empty(), "a Bloom frame needs at least one seed");
        assert!(seeds.len() <= 32, "at most 32 hash seeds per frame");
        Self { cfg, seeds, p_n }
    }

    /// Batched inner loop, monomorphized per hasher kind: `slot_of` already
    /// has all validation and dispatch hoisted out of it.
    ///
    /// The persistence draws are taken *before* hashing (the sampler's
    /// stream does not depend on the hash), so non-responding (tag, seed)
    /// pairs skip the hash entirely — at the accurate phase's small `p`
    /// almost all of them do.
    fn fill_with(
        &self,
        tags: &[Tag],
        sink: &mut SlotSink<'_>,
        slot_of: impl Fn(&Tag, u32) -> usize,
    ) {
        let p_n = self.p_n;
        // The paper fixes k = 3; a fixed-width body keeps the sampler state
        // in registers and removes the inner loop entirely for that case.
        // Two tags are processed per iteration: each tag's three draws form
        // a serial dependency chain (xorshift state), but the chains of
        // different tags are independent, so interleaving them doubles the
        // instruction-level parallelism of the hot loop. Records are
        // grouped per tag, so the multiset of responses is unchanged.
        if let &[s0, s1, s2] = self.seeds {
            let mut pairs = tags.chunks_exact(2);
            for pair in pairs.by_ref() {
                // analysis:allow(hotpath-panic-free): chunks_exact(2) yields slices of exactly two tags
                // analysis:allow(panic-path): chunks_exact(2) yields slices of exactly two tags
                let (a, b) = (&pair[0], &pair[1]);
                let mut sa = PersistenceSampler::new(a.rn, s0);
                let mut sb = PersistenceSampler::new(b.rn, s0);
                let a0 = sa.respond(p_n);
                let b0 = sb.respond(p_n);
                let a1 = sa.respond(p_n);
                let b1 = sb.respond(p_n);
                let a2 = sa.respond(p_n);
                let b2 = sb.respond(p_n);
                if a0 {
                    sink.record(slot_of(a, s0));
                }
                if a1 {
                    sink.record(slot_of(a, s1));
                }
                if a2 {
                    sink.record(slot_of(a, s2));
                }
                if b0 {
                    sink.record(slot_of(b, s0));
                }
                if b1 {
                    sink.record(slot_of(b, s1));
                }
                if b2 {
                    sink.record(slot_of(b, s2));
                }
            }
            for tag in pairs.remainder() {
                let mut sampler = PersistenceSampler::new(tag.rn, s0);
                if sampler.respond(p_n) {
                    sink.record(slot_of(tag, s0));
                }
                if sampler.respond(p_n) {
                    sink.record(slot_of(tag, s1));
                }
                if sampler.respond(p_n) {
                    sink.record(slot_of(tag, s2));
                }
            }
            return;
        }
        for tag in tags {
            // analysis:allow(hotpath-panic-free): seeds carries k >= 1 entries, enforced by BfceConfig::validate at setup
            // analysis:allow(panic-path): seeds carries k >= 1 entries, enforced by BfceConfig::validate at setup
            let mut sampler = PersistenceSampler::new(tag.rn, self.seeds[0]);
            for &seed in self.seeds {
                if sampler.respond(p_n) {
                    sink.record(slot_of(tag, seed));
                }
            }
        }
    }
}

impl ResponsePlan for BloomPlan<'_> {
    fn responses(&self, tag: &Tag, out: &mut Vec<usize>) {
        let hasher = self.cfg.hasher.hasher();
        let mut sampler = PersistenceSampler::new(tag.rn, self.seeds[0]);
        for &seed in self.seeds {
            let slot = hasher.slot(tag.identity(), seed, self.cfg.w);
            if sampler.respond(self.p_n) {
                out.push(slot);
            }
        }
    }

    fn fill_chunk(&self, tags: &[Tag], sink: &mut SlotSink<'_>) {
        let w = self.cfg.w;
        match self.cfg.hasher {
            HasherKind::XorBitget => {
                // BfceConfig::validate() hard-asserts this at setup; here it
                // is an internal invariant re-check, debug-only by design.
                debug_assert!(
                    w.is_power_of_two() && w <= (1usize << 32),
                    "XorBitgetHasher requires w to be a power of two <= 2^32, got {w}"
                );
                let mask = w - 1;
                self.fill_with(tags, sink, |tag, seed| ((tag.rn ^ seed) as usize) & mask);
            }
            HasherKind::Mix64 => {
                debug_assert!(w >= 1, "w must be positive");
                self.fill_with(tags, sink, |tag, seed| {
                    bucket(mix_pair(tag.id, seed as u64), w)
                });
            }
        }
    }
}

/// Build the per-tag response plan for one Bloom frame (see [`BloomPlan`]).
pub(crate) fn bloom_plan<'a>(cfg: &'a BfceConfig, seeds: &'a [u32], p_n: u32) -> BloomPlan<'a> {
    BloomPlan::new(cfg, seeds, p_n)
}

/// Run one standalone Bloom frame with persistence numerator `p_n`
/// (fresh seeds drawn from `rng`), fully observed and charged to the
/// ledger.
///
/// This is the raw building block of both estimation phases; the
/// evaluation harness uses it directly to regenerate Figure 3 (the
/// 0s/1s-vs-cardinality linearity study).
pub fn standalone_frame(
    cfg: &BfceConfig,
    system: &mut RfidSystem,
    p_n: u32,
    rng: &mut dyn RngCore,
) -> rfid_sim::BitFrame {
    cfg.validate();
    assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
    let seeds: Vec<u32> = (0..cfg.k).map(|_| rng.next_u32()).collect();
    system.broadcast(cfg.phase_broadcast_bits());
    let plan = bloom_plan(cfg, &seeds, p_n);
    system.run_bitslot_frame(cfg.w, &plan)
}

/// Full trace of one BFCE run, including every intermediate quantity the
/// paper's analysis talks about.
#[derive(Debug, Clone)]
pub struct BfceRun {
    /// The configuration the run executed with.
    pub config: BfceConfig,
    /// Probe-stage outcome (`p_s` search).
    pub probe: ProbeOutcome,
    /// Rough-stage outcome (`n_r`, `n_low`).
    pub rough: RoughOutcome,
    /// Accurate-stage outcome; `None` when the rough stage saw an empty
    /// system and the accurate frame was skipped (estimate 0).
    pub accurate: Option<AccurateOutcome>,
    /// The standard report (estimate, air time, phases, warnings).
    pub report: EstimationReport,
}

impl BfceRun {
    /// The final estimate.
    pub fn n_hat(&self) -> f64 {
        self.report.n_hat
    }

    /// Delta-method `(1 - delta)` confidence interval around the estimate
    /// (see [`crate::efficiency`]); `None` when the accurate stage was
    /// skipped (empty system).
    pub fn confidence_interval(
        &self,
        delta: f64,
    ) -> Option<crate::efficiency::ConfidenceInterval> {
        self.accurate.as_ref().map(|acc| {
            crate::efficiency::confidence_interval(
                acc.n_hat,
                self.config.w,
                self.config.k,
                acc.p_n,
                delta,
            )
        })
    }
}

/// The Bloom-Filter-based Cardinality Estimator.
#[derive(Debug, Clone, Default)]
pub struct Bfce {
    config: BfceConfig,
}

impl Bfce {
    /// BFCE with a custom configuration.
    pub fn new(config: BfceConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// BFCE exactly as parameterized in the paper.
    pub fn paper() -> Self {
        Self::new(BfceConfig::paper())
    }

    /// The active configuration.
    pub fn config(&self) -> &BfceConfig {
        &self.config
    }

    /// Run the full protocol and return the detailed trace.
    pub fn run(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> BfceRun {
        let cfg = &self.config;
        let mut warnings = Vec::new();
        let start = system.air_time();

        // Stage 1: probe for a valid p_s.
        let probe = run_probe(cfg, system, rng);
        let after_probe = system.air_time();
        if probe.clamped {
            warnings.push(format!(
                "probe never saw a mixed window; clamped at p_n = {}",
                probe.p_n
            ));
        }

        // Stage 2: rough lower bound.
        let rough = run_rough(cfg, system, probe.p_n, rng);
        let after_rough = system.air_time();
        match rough.degenerate {
            Some(FrameDegeneracy::AllIdle) => warnings
                .push("rough frame all idle; population empty or far below design range".into()),
            Some(FrameDegeneracy::AllBusy) => warnings
                .push("rough frame saturated; lower bound clamped".into()),
            None => {}
        }

        // Stage 3: accurate estimation — skipped when stage 2 proved the
        // system empty (nothing would answer the frame either).
        let (accurate, n_hat, after_accurate) = if rough.n_low >= 1.0 {
            let acc = run_accurate(cfg, system, rough.n_low, accuracy, rng);
            if !acc.provable {
                warnings.push(format!(
                    "no persistence numerator provably meets ({}, {}) at n_low = {:.0}; \
                     best-effort p_n = {}",
                    accuracy.epsilon, accuracy.delta, rough.n_low, acc.p_n
                ));
            }
            if acc.degenerate.is_some() {
                warnings.push("accurate frame degenerate".into());
            }
            let n = acc.n_hat;
            let t = system.air_time();
            (Some(acc), n, t)
        } else {
            warnings.push("accurate stage skipped: rough estimate was zero".into());
            (None, 0.0, system.air_time())
        };

        let phases = vec![
            PhaseReport {
                name: "probe".into(),
                air: after_probe.since(&start),
            },
            PhaseReport {
                name: "rough".into(),
                air: after_rough.since(&after_probe),
            },
            PhaseReport {
                name: "accurate".into(),
                air: after_accurate.since(&after_rough),
            },
        ];

        let report = EstimationReport {
            n_hat,
            air: after_accurate.since(&start),
            phases,
            rounds: probe.rounds as u64 + 2,
            warnings,
        };

        BfceRun {
            config: self.config,
            probe,
            rough,
            accurate,
            report,
        }
    }
}

// analysis:allow(snapshot-surface): bloom sketches export via the CLI's collect_snapshot: persistence p is load-matched per reader at deployment time, not estimator state
impl CardinalityEstimator for Bfce {
    fn name(&self) -> &'static str {
        "BFCE"
    }

    fn estimate(
        &self,
        system: &mut RfidSystem,
        accuracy: Accuracy,
        rng: &mut dyn RngCore,
    ) -> EstimationReport {
        self.run(system, accuracy, rng).report
    }
}

/// Sanity re-export used by stage modules' docs.
pub use crate::theory::P_GRID as PERSISTENCE_GRID;

const _: () = assert!(P_GRID == 1024);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rfid_sim::TagPopulation;

    fn system_with(n: usize) -> RfidSystem {
        let tags = (0..n as u64)
            .map(|i| Tag {
                id: i + 1,
                rn: (i as u32)
                    .wrapping_mul(0x9E37_79B9)
                    .wrapping_add(0x5EED),
            })
            .collect();
        RfidSystem::new(TagPopulation::new(tags))
    }

    #[test]
    fn end_to_end_estimate_within_epsilon() {
        for (seed, truth) in [(1u64, 50_000usize), (2, 200_000), (3, 1_000_000)] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
            let rel = run.report.relative_error(truth);
            assert!(
                rel < 0.05,
                "n = {truth}: n_hat = {} (rel {rel})",
                run.n_hat()
            );
            assert!(run.accurate.as_ref().unwrap().provable);
            // n_low really is a lower bound here.
            assert!(run.rough.n_low <= truth as f64);
        }
    }

    #[test]
    fn constant_slot_budget_excluding_probe() {
        // The headline: 1024 + 8192 bit-slots in the two estimation phases,
        // regardless of cardinality.
        for truth in [20_000usize, 500_000] {
            let mut sys = system_with(truth);
            let mut rng = StdRng::seed_from_u64(7);
            let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
            let rough_slots = run.report.phases[1].air.bitslots;
            let accurate_slots = run.report.phases[2].air.bitslots;
            assert_eq!(rough_slots, 1024);
            assert_eq!(accurate_slots, 8192);
        }
    }

    #[test]
    fn execution_time_is_close_to_the_paper_bound() {
        // For populations in the design range the probe converges in a few
        // windows and the total stays within a small factor of the paper's
        // 0.19 s nominal bound.
        let mut sys = system_with(500_000);
        let mut rng = StdRng::seed_from_u64(11);
        let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
        let secs = run.report.air.total_seconds();
        assert!(secs < 0.2, "execution time {secs}s");
    }

    #[test]
    fn empty_system_estimates_zero() {
        let mut sys = system_with(0);
        let mut rng = StdRng::seed_from_u64(5);
        let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
        assert_eq!(run.n_hat(), 0.0);
        assert!(run.accurate.is_none());
        assert!(!run.report.warnings.is_empty());
    }

    #[test]
    fn phases_partition_total_air_time() {
        let mut sys = system_with(100_000);
        let mut rng = StdRng::seed_from_u64(6);
        let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
        let sum: f64 = run.report.phases.iter().map(|p| p.air.total_us()).sum();
        assert!((sum - run.report.air.total_us()).abs() < 1e-6);
        assert_eq!(run.report.phases.len(), 3);
        assert_eq!(run.report.phases[0].name, "probe");
    }

    #[test]
    fn trait_object_usage() {
        let est: Box<dyn CardinalityEstimator> = Box::new(Bfce::paper());
        assert_eq!(est.name(), "BFCE");
        let mut sys = system_with(30_000);
        let mut rng = StdRng::seed_from_u64(8);
        let report = est.estimate(&mut sys, Accuracy::new(0.1, 0.1), &mut rng);
        assert!(report.relative_error(30_000) < 0.1);
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let run = |seed| {
            let mut sys = system_with(60_000);
            let mut rng = StdRng::seed_from_u64(seed);
            Bfce::paper()
                .run(&mut sys, Accuracy::paper_default(), &mut rng)
                .n_hat()
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn bloom_plan_batched_fill_matches_scalar_responses() {
        // The fill_chunk override draws persistence before hashing; the
        // frame it produces must still be bitwise-identical to the scalar
        // hash-then-draw path, for both hasher kinds.
        let seeds = [0x5EED_0001u32, 0xBEEF_CAFE, 0x1234_5678];
        for hasher in [crate::params::HasherKind::XorBitget, crate::params::HasherKind::Mix64] {
            let cfg = BfceConfig {
                hasher,
                ..BfceConfig::paper()
            };
            let tags: Vec<Tag> = (0..5_000u64)
                .map(|i| Tag {
                    id: i + 1,
                    rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(17),
                })
                .collect();
            let plan = BloomPlan::new(&cfg, &seeds, 512);
            let reference =
                rfid_sim::frame::response_counts_reference(&tags, cfg.w, &plan, usize::MAX);
            for threads in [1usize, 4] {
                let fill =
                    rfid_sim::frame::response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, threads);
                for (i, &c) in reference.iter().enumerate() {
                    assert_eq!(fill.busy.get(i), c > 0, "{hasher:?} slot {i} threads {threads}");
                }
                let total: u64 = reference.iter().map(|&c| c as u64).sum();
                assert_eq!(fill.prefix_responses, total, "{hasher:?} threads {threads}");
            }
        }
    }

    #[test]
    fn mix_hasher_variant_also_works() {
        let cfg = BfceConfig {
            hasher: crate::params::HasherKind::Mix64,
            ..BfceConfig::paper()
        };
        let mut sys = system_with(250_000);
        let mut rng = StdRng::seed_from_u64(12);
        let run = Bfce::new(cfg).run(&mut sys, Accuracy::paper_default(), &mut rng);
        assert!(run.report.relative_error(250_000) < 0.05);
    }
}
