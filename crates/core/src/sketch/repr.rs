//! Tiered register storage and the two LogLog-family register sketches.
//!
//! A register sketch holds `m = 2^p` one-byte registers, each the maximum
//! rank (first-set-bit position) observed among the tags hashing to it.
//! Small populations touch only a handful of registers, so the storage is
//! tiered:
//!
//! * **Small** — up to [`SMALL_CAP`] `(register, rank)` pairs inline, no
//!   heap allocation;
//! * **Array** — a sorted `Vec` of pairs, up to `m / 4` entries;
//! * **Dense** — the full `m`-byte register file.
//!
//! The active tier is a **pure function of the register contents** (the
//! nonzero count): promotions happen exactly when an insert crosses a
//! threshold, never on merge order or call history. That canonicality is
//! what makes the merge algebra hold *bitwise* — `a ∪ b` and `b ∪ a` are
//! not merely equal as multisets of registers but identical in memory and
//! on the wire, which the merge-determinism audit and the proptests in
//! `tests/merge_algebra.rs` check literally.
//!
//! [`RegisterSketch`] wraps the tiers with the sketch parameters and the
//! two estimate formulas:
//!
//! * **HyperLogLog++** (Heule, Nunkesser, Hall 2013): the bias-corrected
//!   raw estimate `α_m · m² / Σ 2^{-M_j}`, falling back to linear counting
//!   `m · ln(m / z)` in the small range. The 64-bit register hash
//!   ([`rfid_hash::register_hash`]) removes the need for the 32-bit
//!   large-range correction.
//! * **LogLog-β** (Qin, Kim, Tung, Wang 2016): the single closed-form
//!   `α_∞ · m · (m − z) / (β(m, z) + Σ 2^{-M_j})`, where the polynomial
//!   `β` absorbs both the small-range and mid-range bias, so there is no
//!   regime switch at all. The published coefficients are fitted at
//!   `m = 2^14`; other precisions use them as an approximation (the paper
//!   notes they drift slowly with `m`), so the conformance harness pins
//!   LogLog-β at precision 14.

use super::wire::{Reader, WireError, Writer};
use rfid_hash::register::{register_hash, MAX_RANK, PRECISION_RANGE};

/// Maximum nonzero registers held inline by the Small tier.
pub const SMALL_CAP: usize = 8;

/// Registers of a precision-`p` sketch (`m = 2^p`).
#[inline]
fn m_of(p: u8) -> usize {
    1usize << p
}

/// Largest nonzero-register count stored sparsely; one past this and the
/// sketch is Dense. `m / 4` keeps the sorted-pair tier strictly smaller
/// than the register file it replaces, floored at [`SMALL_CAP`] so the
/// Small tier always exists.
pub fn sparse_cap(p: u8) -> usize {
    SMALL_CAP.max(m_of(p) / 4)
}

/// The storage tiers. `PartialEq` here is representational equality — by
/// the canonical-tier invariant it coincides with register-file equality.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Repr {
    /// `len` pairs in `pairs[..len]`, sorted by register, ranks nonzero.
    Small {
        /// Number of live pairs.
        len: u8,
        /// Inline pair storage; entries past `len` are `(0, 0)` filler.
        pairs: [(u16, u8); SMALL_CAP],
    },
    /// Sorted `(register, rank)` pairs, ranks nonzero.
    Array(Vec<(u16, u8)>),
    /// The full register file, one byte per register.
    Dense(Vec<u8>),
}

/// A tiered register file for one LogLog-family sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registers {
    precision: u8,
    repr: Repr,
}

impl Registers {
    /// Empty register file with `m = 2^precision` registers.
    ///
    /// Panics if `precision` is outside [`PRECISION_RANGE`].
    pub fn new(precision: u8) -> Self {
        assert!(
            PRECISION_RANGE.contains(&precision),
            "precision {precision} outside {PRECISION_RANGE:?}"
        );
        Self {
            precision,
            repr: Repr::Small {
                len: 0,
                pairs: [(0, 0); SMALL_CAP],
            },
        }
    }

    /// The register-index precision `p`.
    pub fn precision(&self) -> u8 {
        self.precision
    }

    /// Number of registers, `m = 2^p`.
    pub fn m(&self) -> usize {
        m_of(self.precision)
    }

    /// Name of the active tier — `"small"`, `"array"`, or `"dense"` — for
    /// tests asserting promotion boundaries.
    pub fn tier(&self) -> &'static str {
        match &self.repr {
            Repr::Small { .. } => "small",
            Repr::Array(_) => "array",
            Repr::Dense(_) => "dense",
        }
    }

    /// Number of registers holding a nonzero rank.
    pub fn nonzero(&self) -> usize {
        match &self.repr {
            Repr::Small { len, .. } => *len as usize,
            Repr::Array(pairs) => pairs.len(),
            Repr::Dense(bytes) => bytes.iter().filter(|&&b| b != 0).count(),
        }
    }

    /// Rank stored in `register` (0 if never observed). Panics if the
    /// register is out of range.
    pub fn get(&self, register: usize) -> u8 {
        assert!(register < self.m(), "register {register} out of range");
        let key = register as u16;
        match &self.repr {
            // analysis:allow(hotpath-panic-free): len <= SMALL_CAP is the Small-tier invariant, checked at decode and every insert
            // analysis:allow(panic-path): len <= SMALL_CAP is the Small-tier invariant, checked at decode and every insert
            Repr::Small { len, pairs } => pairs[..*len as usize]
                .iter()
                .find(|(r, _)| *r == key)
                .map_or(0, |&(_, q)| q),
            Repr::Array(pairs) => pairs
                .binary_search_by_key(&key, |&(r, _)| r)
                // analysis:allow(hotpath-panic-free): binary_search_by_key only returns Ok(i) with i in range
                // analysis:allow(panic-path): binary_search_by_key only returns Ok(i) with i in range
                .map_or(0, |i| pairs[i].1),
            // analysis:allow(hotpath-panic-free): register < m() is this fn's documented precondition, asserted on entry
            // analysis:allow(panic-path): register < m() is this fn's documented precondition, asserted on entry
            Repr::Dense(bytes) => bytes[register],
        }
    }

    /// Raise `register` to at least `rank` (max-merge of one observation).
    ///
    /// Panics if the register is out of range or the rank is zero — both
    /// are caller bugs, not data conditions (wire decoding validates
    /// before calling in).
    pub fn observe(&mut self, register: u32, rank: u8) {
        let m = self.m();
        assert!((register as usize) < m, "register {register} out of range");
        assert!(rank >= 1, "rank must be at least 1");
        let key = register as u16;
        match &mut self.repr {
            Repr::Small { len, pairs } => {
                // analysis:allow(panic-path): len <= SMALL_CAP is the Small-tier invariant, checked at decode and every insert
                let live = &mut pairs[..*len as usize];
                match live.iter_mut().find(|(r, _)| *r == key) {
                    Some((_, q)) => *q = (*q).max(rank),
                    None if (*len as usize) < SMALL_CAP => {
                        let n = *len as usize;
                        // Insert sorted: shift the tail up one slot.
                        // analysis:allow(panic-path): at <= n < SMALL_CAP in this arm, so at and at + 1 stay in the fixed array
                        let at = pairs[..n].partition_point(|&(r, _)| r < key);
                        pairs.copy_within(at..n, at + 1);
                        // analysis:allow(panic-path): same bound — the guard above admits only n < SMALL_CAP
                        pairs[at] = (key, rank);
                        *len += 1;
                    }
                    None => {
                        self.promote(SMALL_CAP + 1);
                        self.observe(register, rank);
                    }
                }
            }
            Repr::Array(pairs) => match pairs.binary_search_by_key(&key, |&(r, _)| r) {
                // analysis:allow(panic-path): binary_search_by_key only returns Ok(i) with i in range
                Ok(i) => pairs[i].1 = pairs[i].1.max(rank),
                Err(i) if pairs.len() < sparse_cap(self.precision) => {
                    pairs.insert(i, (key, rank));
                }
                Err(_) => {
                    self.promote(sparse_cap(self.precision) + 1);
                    self.observe(register, rank);
                }
            },
            Repr::Dense(bytes) => {
                // analysis:allow(panic-path): register < m is asserted at the top of observe; Dense always holds m bytes
                let cell = &mut bytes[register as usize];
                *cell = (*cell).max(rank);
            }
        }
    }

    /// Promote the representation to whichever tier canonically holds
    /// `upcoming` nonzero registers. Content is preserved exactly.
    fn promote(&mut self, upcoming: usize) {
        let p = self.precision;
        if upcoming <= sparse_cap(p) {
            // Small → Array.
            if let Repr::Small { len, pairs } = &self.repr {
                let mut v = Vec::with_capacity(sparse_cap(p).min(*len as usize * 2 + 1));
                // analysis:allow(panic-path): len <= SMALL_CAP is the Small-tier invariant, checked at decode and every insert
                v.extend_from_slice(&pairs[..*len as usize]);
                self.repr = Repr::Array(v);
            }
        } else {
            // Small/Array → Dense.
            let mut bytes = vec![0u8; m_of(p)];
            // analysis:allow(panic-path): every stored register key is < m (checked at observe/decode), and bytes holds m entries
            self.for_each_nonzero(|r, q| bytes[r as usize] = q);
            self.repr = Repr::Dense(bytes);
        }
    }

    /// Visit every nonzero register in ascending register order.
    pub fn for_each_nonzero(&self, mut f: impl FnMut(u16, u8)) {
        match &self.repr {
            Repr::Small { len, pairs } => {
                // analysis:allow(panic-path): len <= SMALL_CAP is the Small-tier invariant, checked at decode and every insert
                for &(r, q) in &pairs[..*len as usize] {
                    f(r, q);
                }
            }
            Repr::Array(pairs) => {
                for &(r, q) in pairs {
                    f(r, q);
                }
            }
            Repr::Dense(bytes) => {
                for (r, &q) in bytes.iter().enumerate() {
                    if q != 0 {
                        f(r as u16, q);
                    }
                }
            }
        }
    }

    /// Max-merge every register of `other` into `self`.
    ///
    /// Panics on a precision mismatch; sketch-level merges check
    /// compatibility first and surface it as an error.
    pub fn merge_from(&mut self, other: &Registers) {
        assert_eq!(
            self.precision, other.precision,
            "cannot merge registers of different precisions"
        );
        // Dense×Dense merges word through the register files directly;
        // every other combination routes through observe(), which handles
        // tier promotion at the canonical thresholds.
        if let (Repr::Dense(a), Repr::Dense(b)) = (&mut self.repr, &other.repr) {
            for (x, &y) in a.iter_mut().zip(b) {
                *x = (*x).max(y);
            }
            return;
        }
        other.for_each_nonzero(|r, q| self.observe(r as u32, q));
    }

    /// `(zero-register count, Σ_j 2^{-M_j})` over **all** `m` registers —
    /// zero registers contribute `2^0 = 1` to the harmonic sum. Summation
    /// runs in ascending register order, so the value is deterministic.
    pub fn stats(&self) -> (usize, f64) {
        let zeros = self.m() - self.nonzero();
        let mut sum = zeros as f64;
        self.for_each_nonzero(|_, q| sum += 1.0 / (1u64 << q) as f64);
        (zeros, sum)
    }

    /// Append the canonical wire encoding of the registers: a tier byte
    /// (0 = sparse, 1 = dense), then either `count · (u16 register,
    /// u8 rank)` sorted pairs or the raw `m`-byte register file.
    pub(super) fn encode_into(&self, w: &mut Writer) {
        let n = self.nonzero();
        if n <= sparse_cap(self.precision) {
            w.u8(0);
            w.u16(n as u16);
            self.for_each_nonzero(|r, q| {
                w.u16(r);
                w.u8(q);
            });
        } else {
            w.u8(1);
            match &self.repr {
                Repr::Dense(bytes) => w.bytes(bytes),
                // Unreachable under the canonical-tier invariant, but
                // encode correctly rather than trusting it.
                _ => {
                    let mut bytes = vec![0u8; self.m()];
                    // analysis:allow(panic-path): every stored register key is < m (checked at observe/decode), and bytes holds m entries
                    self.for_each_nonzero(|r, q| bytes[r as usize] = q);
                    w.bytes(&bytes);
                }
            }
        }
    }

    /// Decode registers for a precision-`p` sketch with ranks capped at
    /// `levels`, validating range, ordering, and canonical-form rules so
    /// that re-encoding reproduces the input bytes exactly.
    pub(super) fn decode_from(r: &mut Reader<'_>, p: u8, levels: u8) -> Result<Self, WireError> {
        let m = m_of(p);
        let tier = r.u8()?;
        match tier {
            0 => {
                let count = r.u16()? as usize;
                if count > sparse_cap(p) {
                    return Err(WireError::Invalid(
                        "sparse register count above the canonical cap",
                    ));
                }
                let mut regs = Registers::new(p);
                let mut prev: Option<u16> = None;
                for _ in 0..count {
                    let reg = r.u16()?;
                    let rank = r.u8()?;
                    if (reg as usize) >= m {
                        return Err(WireError::Invalid("register index out of range"));
                    }
                    if prev.is_some_and(|p| reg <= p) {
                        return Err(WireError::Invalid(
                            "sparse registers not strictly ascending",
                        ));
                    }
                    if rank == 0 || rank > levels {
                        return Err(WireError::Invalid("rank outside [1, levels]"));
                    }
                    regs.observe(reg as u32, rank);
                    prev = Some(reg);
                }
                Ok(regs)
            }
            1 => {
                let bytes = r.bytes(m)?;
                let mut nonzero = 0usize;
                for &b in bytes {
                    if b > levels {
                        return Err(WireError::Invalid("dense rank above levels"));
                    }
                    nonzero += usize::from(b != 0);
                }
                if nonzero <= sparse_cap(p) {
                    return Err(WireError::Invalid(
                        "dense encoding of a sparse register file",
                    ));
                }
                Ok(Registers {
                    precision: p,
                    repr: Repr::Dense(bytes.to_vec()),
                })
            }
            _ => Err(WireError::Invalid("unknown register tier byte")),
        }
    }
}

/// Which LogLog-family estimate formula a [`RegisterSketch`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegisterFlavor {
    /// HyperLogLog++ (raw + linear-counting small range).
    HllPp,
    /// LogLog-β (single closed-form with the β bias polynomial).
    LogLogBeta,
}

impl RegisterFlavor {
    /// Stable lower-case name matching the CLI estimator registry.
    pub fn name(self) -> &'static str {
        match self {
            RegisterFlavor::HllPp => "hllpp",
            RegisterFlavor::LogLogBeta => "llbeta",
        }
    }
}

/// HyperLogLog bias constant `α_m` (Flajolet et al., with the small-`m`
/// specializations).
fn alpha(m: usize) -> f64 {
    match m {
        16 => 0.673,
        32 => 0.697,
        64 => 0.709,
        _ => 0.7213 / (1.0 + 1.079 / m as f64),
    }
}

/// The LogLog-β bias polynomial in `z` (zero-register count) and
/// `ln(z + 1)`, coefficients fitted at `m = 2^14` by Qin et al.
fn beta(z: f64) -> f64 {
    let zl = (z + 1.0).ln();
    -0.370393911 * z
        + 0.070471823 * zl
        + 0.17393686 * zl.powi(2)
        + 0.16339839 * zl.powi(3)
        - 0.09237745 * zl.powi(4)
        + 0.03738027 * zl.powi(5)
        - 0.005384159 * zl.powi(6)
        + 0.00042419 * zl.powi(7)
}

/// A LogLog-family sketch: parameters + tiered registers + flavor.
///
/// Two sketches are mergeable exactly when flavor, precision, rank
/// levels, and hash seed all agree — then the register-wise `max` of
/// their files is precisely the sketch of the union population, because
/// a shared tag hashes identically in both.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterSketch {
    flavor: RegisterFlavor,
    levels: u8,
    seed: u32,
    registers: Registers,
}

impl RegisterSketch {
    /// Empty sketch.
    ///
    /// Panics if `precision` is outside [`PRECISION_RANGE`] or `levels`
    /// is outside `[1, MAX_RANK]` — configuration errors, checked once.
    pub fn new(flavor: RegisterFlavor, precision: u8, levels: u8, seed: u32) -> Self {
        assert!(
            (1..=MAX_RANK).contains(&levels),
            "levels {levels} outside [1, {MAX_RANK}]"
        );
        Self {
            flavor,
            levels,
            seed,
            registers: Registers::new(precision),
        }
    }

    /// The estimate formula in force.
    pub fn flavor(&self) -> RegisterFlavor {
        self.flavor
    }

    /// Register-index precision `p`.
    pub fn precision(&self) -> u8 {
        self.registers.precision()
    }

    /// Rank cap (number of rank levels a frame carries per register).
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// The reader-broadcast hash seed.
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// The underlying register file.
    pub fn registers(&self) -> &Registers {
        &self.registers
    }

    /// Absorb one tag identity (hash → register/rank → max-merge).
    pub fn observe_identity(&mut self, identity: u64) {
        let (register, rank) =
            register_hash(identity, self.seed, self.precision(), self.levels);
        self.registers.observe(register, rank);
    }

    /// Absorb one already-hashed `(register, rank)` observation — the
    /// form a busy frame slot decodes to.
    pub fn observe_slot(&mut self, register: u32, rank: u8) {
        self.registers.observe(register, rank.min(self.levels));
    }

    /// Check merge compatibility.
    pub fn compatible(&self, other: &RegisterSketch) -> Result<(), &'static str> {
        if self.flavor != other.flavor {
            return Err("sketch flavors differ");
        }
        if self.precision() != other.precision() {
            return Err("sketch precisions differ");
        }
        if self.levels != other.levels {
            return Err("sketch rank levels differ");
        }
        if self.seed != other.seed {
            return Err("sketch hash seeds differ");
        }
        Ok(())
    }

    /// Register-wise max-merge. Panics on incompatibility; the
    /// [`Snapshot`](super::Snapshot) impl checks first and errors.
    pub(super) fn merge_unchecked(&mut self, other: &RegisterSketch) {
        self.registers.merge_from(&other.registers);
    }

    /// The cardinality estimate under this sketch's flavor.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.m();
        let mf = m as f64;
        let (zeros, sum) = self.registers.stats();
        match self.flavor {
            RegisterFlavor::HllPp => {
                let raw = alpha(m) * mf * mf / sum;
                if raw <= 2.5 * mf && zeros > 0 {
                    // Small-range regime: linear counting on the
                    // zero-register fraction is far less biased.
                    mf * (mf / zeros as f64).ln()
                } else {
                    raw
                }
            }
            RegisterFlavor::LogLogBeta => {
                if zeros == m {
                    return 0.0;
                }
                let z = zeros as f64;
                let alpha_inf = 0.7213 / (1.0 + 1.079 / mf);
                alpha_inf * mf * (mf - z) / (beta(z) + sum)
            }
        }
    }

    /// Canonical `rfid-sketch/v1` encoding.
    pub fn encode(&self) -> Vec<u8> {
        let kind = match self.flavor {
            RegisterFlavor::HllPp => super::wire::SketchKind::HllPp,
            RegisterFlavor::LogLogBeta => super::wire::SketchKind::LogLogBeta,
        };
        let mut w = Writer::new(kind);
        w.u8(self.precision());
        w.u8(self.levels);
        w.u32(self.seed);
        self.registers.encode_into(&mut w);
        w.finish()
    }

    /// Decode the payload following the kind byte (header already
    /// consumed by [`Reader::open`]).
    pub(super) fn decode_payload(
        r: &mut Reader<'_>,
        flavor: RegisterFlavor,
    ) -> Result<Self, WireError> {
        let precision = r.u8()?;
        if !PRECISION_RANGE.contains(&precision) {
            return Err(WireError::Invalid("precision outside [4, 16]"));
        }
        let levels = r.u8()?;
        if !(1..=MAX_RANK).contains(&levels) {
            return Err(WireError::Invalid("levels outside [1, 61]"));
        }
        let seed = r.u32()?;
        let registers = Registers::decode_from(r, precision, levels)?;
        Ok(Self {
            flavor,
            levels,
            seed,
            registers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_promote_at_the_canonical_thresholds() {
        let p = 8u8; // m = 256, sparse cap = 64
        let mut regs = Registers::new(p);
        assert_eq!(regs.tier(), "small");
        for r in 0..SMALL_CAP as u32 {
            regs.observe(r, 1);
        }
        assert_eq!(regs.tier(), "small");
        regs.observe(SMALL_CAP as u32, 1);
        assert_eq!(regs.tier(), "array");
        for r in SMALL_CAP as u32 + 1..64 {
            regs.observe(r, 1);
        }
        assert_eq!(regs.tier(), "array");
        assert_eq!(regs.nonzero(), 64);
        regs.observe(64, 1);
        assert_eq!(regs.tier(), "dense");
        assert_eq!(regs.nonzero(), 65);
    }

    #[test]
    fn small_precisions_skip_the_array_tier() {
        // m = 16 → sparse cap = SMALL_CAP, so the 9th register is dense.
        let mut regs = Registers::new(4);
        for r in 0..8 {
            regs.observe(r, 2);
        }
        assert_eq!(regs.tier(), "small");
        regs.observe(8, 2);
        assert_eq!(regs.tier(), "dense");
    }

    #[test]
    fn observe_is_a_max_merge_and_get_reads_back() {
        let mut regs = Registers::new(10);
        regs.observe(5, 3);
        regs.observe(5, 1);
        assert_eq!(regs.get(5), 3);
        regs.observe(5, 7);
        assert_eq!(regs.get(5), 7);
        assert_eq!(regs.get(6), 0);
    }

    #[test]
    fn content_equal_register_files_are_representation_equal() {
        // Same registers reached via different orders and merge shapes
        // must compare equal bitwise (canonical tier).
        let p = 6u8;
        let mut fwd = Registers::new(p);
        let mut rev = Registers::new(p);
        let obs: Vec<(u32, u8)> = (0..40).map(|i| (i % 23, (i % 5) as u8 + 1)).collect();
        for &(r, q) in &obs {
            fwd.observe(r, q);
        }
        for &(r, q) in obs.iter().rev() {
            rev.observe(r, q);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.tier(), rev.tier());
    }

    #[test]
    fn merge_from_equals_observing_both_streams() {
        let p = 7u8;
        let mut a = Registers::new(p);
        let mut b = Registers::new(p);
        let mut both = Registers::new(p);
        for i in 0..300u32 {
            let (r, q) = (i * 37 % 128, (i % 9) as u8 + 1);
            if i % 2 == 0 {
                a.observe(r, q);
            } else {
                b.observe(r, q);
            }
            both.observe(r, q);
        }
        a.merge_from(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn stats_count_zeros_and_harmonic_sum() {
        let mut regs = Registers::new(4); // m = 16
        let (z, s) = regs.stats();
        assert_eq!(z, 16);
        assert_eq!(s, 16.0);
        regs.observe(0, 1);
        regs.observe(1, 2);
        let (z, s) = regs.stats();
        assert_eq!(z, 14);
        assert!((s - (14.0 + 0.5 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn hllpp_estimates_are_accurate_across_ranges() {
        for truth in [10usize, 500, 20_000, 300_000] {
            let mut sk = RegisterSketch::new(RegisterFlavor::HllPp, 12, 61, 0xC0FFEE);
            for i in 0..truth as u64 {
                sk.observe_identity(i + 1);
            }
            let rel = (sk.estimate() - truth as f64).abs() / truth as f64;
            // σ ≈ 1.04 / √4096 ≈ 1.6%; allow 4σ at a fixed seed.
            assert!(rel < 0.065, "truth {truth}: estimate {} rel {rel}", sk.estimate());
        }
    }

    #[test]
    fn llbeta_estimates_are_accurate_across_ranges() {
        for truth in [10usize, 500, 20_000, 300_000] {
            let mut sk = RegisterSketch::new(RegisterFlavor::LogLogBeta, 14, 61, 0xBEE);
            for i in 0..truth as u64 {
                sk.observe_identity(i + 1);
            }
            let rel = (sk.estimate() - truth as f64).abs() / truth as f64;
            // σ ≈ 1.04 / √16384 ≈ 0.8%; allow ~4σ at a fixed seed.
            assert!(rel < 0.035, "truth {truth}: estimate {} rel {rel}", sk.estimate());
        }
    }

    #[test]
    fn empty_sketches_estimate_zero_ish() {
        let hll = RegisterSketch::new(RegisterFlavor::HllPp, 12, 32, 1);
        assert_eq!(hll.estimate(), 0.0); // linear counting with z = m
        let llb = RegisterSketch::new(RegisterFlavor::LogLogBeta, 12, 32, 1);
        assert_eq!(llb.estimate(), 0.0);
    }

    #[test]
    fn merged_sketch_counts_shared_tags_once() {
        let mk = |range: std::ops::Range<u64>| {
            let mut sk = RegisterSketch::new(RegisterFlavor::HllPp, 12, 61, 42);
            for i in range {
                sk.observe_identity(i + 1);
            }
            sk
        };
        let mut a = mk(0..60_000);
        let b = mk(40_000..100_000);
        let union = mk(0..100_000);
        a.merge_unchecked(&b);
        assert_eq!(a, union);
        let rel = (a.estimate() - 100_000.0).abs() / 100_000.0;
        assert!(rel < 0.065, "union estimate {} rel {rel}", a.estimate());
    }

    #[test]
    fn compatibility_requires_all_four_parameters() {
        let base = RegisterSketch::new(RegisterFlavor::HllPp, 12, 32, 7);
        assert!(base
            .compatible(&RegisterSketch::new(RegisterFlavor::HllPp, 12, 32, 7))
            .is_ok());
        for other in [
            RegisterSketch::new(RegisterFlavor::LogLogBeta, 12, 32, 7),
            RegisterSketch::new(RegisterFlavor::HllPp, 13, 32, 7),
            RegisterSketch::new(RegisterFlavor::HllPp, 12, 31, 7),
            RegisterSketch::new(RegisterFlavor::HllPp, 12, 32, 8),
        ] {
            assert!(base.compatible(&other).is_err());
        }
    }

    #[test]
    fn encode_decode_round_trips_every_tier() {
        for count in [0usize, 3, SMALL_CAP, SMALL_CAP + 1, 200, 2000] {
            let mut sk = RegisterSketch::new(RegisterFlavor::LogLogBeta, 12, 61, 9);
            for i in 0..count as u64 {
                sk.observe_identity(i * 7 + 1);
            }
            let bytes = sk.encode();
            let (mut r, kind) = Reader::open(&bytes).expect("open");
            assert_eq!(kind, super::super::wire::SketchKind::LogLogBeta);
            let back = RegisterSketch::decode_payload(&mut r, RegisterFlavor::LogLogBeta)
                .expect("decode");
            r.finish().expect("consumed");
            assert_eq!(back, sk, "count {count}");
            assert_eq!(back.encode(), bytes, "re-encode bijection at count {count}");
        }
    }
}
