//! Must-not-panic entry point for the `snapshot_roundtrip` fuzz target.
//!
//! Mirrors the pattern of `rfid-analysis`'s `fuzz_surface`: the
//! out-of-tree cargo-fuzz target under `fuzz/fuzz_targets/` is a thin
//! wrapper around [`snapshot_roundtrip`], and the in-tree
//! `crates/core/tests/fuzz_smoke.rs` replays the same body over the seed
//! corpus plus deterministic mutations on every `cargo test` — so a
//! crash found by the fuzzer reproduces as a plain unit-test call.
//!
//! Invariants enforced on arbitrary bytes:
//!
//! * decoding never panics — it returns a value or a strict [`WireError`];
//! * accepted bytes re-encode **byte-for-byte** (the decoder admits only
//!   the canonical form, so decode/encode is a bijection on its image);
//! * every accepted snapshot yields a finite, non-negative estimate;
//! * self-merge is idempotent and keeps the snapshot identical;
//! * rejections format into non-empty error messages (the `Display`
//!   impls are part of the CLI surface).

use super::{AnySnapshot, Snapshot};

/// Fuzz body: strict decode → canonical re-encode → estimate/self-merge
/// sanity.
pub fn snapshot_roundtrip(data: &[u8]) {
    match AnySnapshot::decode(data) {
        Ok(snap) => {
            let encoded = snap.snapshot();
            // analysis:allow(panic-path): this fn is the fuzz oracle — a violated invariant must abort so libFuzzer records the input
            assert_eq!(
                encoded, data,
                "decoder accepted a non-canonical encoding (re-encode differs)"
            );
            let estimate = snap.estimate();
            // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
            assert!(
                estimate.is_finite() && estimate >= 0.0,
                "accepted snapshot produced estimate {estimate}"
            );
            let mut merged = snap.clone();
            merged
                .merge(&snap)
                .expect("a snapshot must merge with itself"); // analysis:allow(unwrap): a fuzz body aborts loudly on violation — the panic IS the oracle
            // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
            assert_eq!(merged, snap, "self-merge is not idempotent");
            // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
            assert_eq!(merged.snapshot(), encoded, "self-merge changed the encoding");
        }
        Err(err) => {
            let msg = err.to_string();
            // analysis:allow(panic-path): fuzz oracle — the panic is the crash report
            assert!(!msg.is_empty(), "wire errors must render a message");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{BloomSketch, RegisterFlavor, RegisterSketch};
    use super::*;

    #[test]
    fn body_accepts_valid_snapshots() {
        let mut reg = RegisterSketch::new(RegisterFlavor::HllPp, 12, 61, 3);
        for i in 0..5_000u64 {
            reg.observe_identity(i + 1);
        }
        snapshot_roundtrip(&reg.snapshot());
        snapshot_roundtrip(&BloomSketch::empty(8192, &[1, 2, 3], 40).snapshot());
    }

    #[test]
    fn body_rejects_garbage_without_panicking() {
        snapshot_roundtrip(b"");
        snapshot_roundtrip(b"rfid-sketch/");
        snapshot_roundtrip(b"rfid-sketch/v1\n");
        snapshot_roundtrip(b"rfid-sketch/v2\n\x01rest");
        snapshot_roundtrip(&[0xFF; 64]);
    }

    #[test]
    fn body_rejects_truncations_of_valid_snapshots() {
        let mut reg = RegisterSketch::new(RegisterFlavor::LogLogBeta, 8, 32, 1);
        for i in 0..2_000u64 {
            reg.observe_identity(i + 1);
        }
        let bytes = reg.snapshot();
        for cut in 0..bytes.len() {
            snapshot_roundtrip(&bytes[..cut]);
        }
    }

    #[test]
    fn body_rejects_bit_flips_or_accepts_them_canonically() {
        let bytes = BloomSketch::empty(64, &[7], 99).snapshot();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            snapshot_roundtrip(&corrupt);
        }
    }
}
