//! Mergeable estimator snapshots (ROADMAP item 2).
//!
//! The paper's protocols are one-shot: a reader runs a frame, inverts an
//! observation, and the state dies with the call. Continuous estimation
//! over many readers needs that state to outlive the call — to be
//! **checkpointed** (serialize to bytes), **restored** (bytes back to
//! state, bitwise-identical), and **merged** (k readers' states folded
//! into the state one logical reader covering the union would have had).
//! The [`Snapshot`] trait names those three operations; this module
//! implements them for:
//!
//! * [`BloomSketch`] — a BFCE Bloom frame (busy bitmap + parameters),
//!   merging by slot-wise OR, generalizing
//!   [`crate::multiset::estimate_union`] to serialized per-reader state;
//! * [`RegisterSketch`] — HyperLogLog++ / LogLog-β register files with
//!   Small → Array → Dense tiered storage, merging by register-wise max.
//!
//! Both merges are commutative, associative, and idempotent, and both
//! representations are **canonical** (a pure function of the logical
//! content), so merge results are bitwise-deterministic under any merge
//! order — the property `tests/merge_algebra.rs` checks with proptest and
//! `tests/determinism.rs` audits across `--jobs` splits.
//!
//! Snapshots travel as [`wire`]'s `rfid-sketch/v1` byte strings; the
//! kind-dispatching [`AnySnapshot`] and [`merge_all`] implement the
//! back-end side of the protocol without knowing which estimator produced
//! the state.

pub mod bloom;
pub mod fuzz;
pub mod repr;
pub mod wire;

pub use bloom::BloomSketch;
pub use repr::{sparse_cap, RegisterFlavor, RegisterSketch, Registers, SMALL_CAP};
pub use wire::{SketchKind, WireError};

use wire::Reader;

/// Why a snapshot operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchError {
    /// The bytes are not a valid `rfid-sketch/v1` snapshot.
    Wire(WireError),
    /// The snapshot decodes fine but is not the kind the caller needs
    /// (e.g. restoring a Bloom sketch from HLL++ bytes).
    WrongKind {
        /// What the caller can restore.
        want: &'static str,
        /// What the bytes actually carry.
        got: SketchKind,
    },
    /// Both operands decode fine but cannot be merged (parameters or
    /// kinds disagree).
    Incompatible {
        /// Which parameter disagrees.
        what: &'static str,
    },
    /// A fold over zero snapshots.
    NoSnapshots,
}

impl From<WireError> for SketchError {
    fn from(e: WireError) -> Self {
        SketchError::Wire(e)
    }
}

impl std::fmt::Display for SketchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SketchError::Wire(e) => write!(f, "{e}"),
            SketchError::WrongKind { want, got } => {
                write!(f, "snapshot kind mismatch: wanted {want}, got {got}")
            }
            SketchError::Incompatible { what } => {
                write!(f, "snapshots cannot be merged: {what}")
            }
            SketchError::NoSnapshots => write!(f, "no snapshots to merge"),
        }
    }
}

impl std::error::Error for SketchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SketchError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

/// Checkpointable, restorable, mergeable estimator state.
///
/// Laws (checked by `tests/merge_algebra.rs`):
///
/// * `restore(a.snapshot()) == a` bitwise;
/// * `merge` is commutative, associative, and idempotent (`a ∪ a = a`),
///   with results bitwise-identical across merge orders;
/// * `merge` errors (rather than silently corrupting) on incompatible
///   operands, leaving `self` unchanged.
pub trait Snapshot: Sized {
    /// Serialize to a canonical `rfid-sketch/v1` byte string.
    fn snapshot(&self) -> Vec<u8>;

    /// Rebuild state from a snapshot, strictly validated.
    fn restore(bytes: &[u8]) -> Result<Self, SketchError>;

    /// Fold `other` into `self` so that `self` describes the union of
    /// both coverages. On error, `self` is unchanged.
    fn merge(&mut self, other: &Self) -> Result<(), SketchError>;
}

impl Snapshot for BloomSketch {
    fn snapshot(&self) -> Vec<u8> {
        self.encode()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SketchError> {
        let (mut r, kind) = Reader::open(bytes)?;
        if kind != SketchKind::BloomFrame {
            return Err(SketchError::WrongKind {
                want: "bloom-frame",
                got: kind,
            });
        }
        let sketch = BloomSketch::decode_payload(&mut r)?;
        r.finish()?;
        Ok(sketch)
    }

    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        self.compatible(other)
            .map_err(|what| SketchError::Incompatible { what })?;
        self.merge_unchecked(other);
        Ok(())
    }
}

impl Snapshot for RegisterSketch {
    fn snapshot(&self) -> Vec<u8> {
        self.encode()
    }

    fn restore(bytes: &[u8]) -> Result<Self, SketchError> {
        let (mut r, kind) = Reader::open(bytes)?;
        let flavor = match kind {
            SketchKind::HllPp => RegisterFlavor::HllPp,
            SketchKind::LogLogBeta => RegisterFlavor::LogLogBeta,
            SketchKind::BloomFrame => {
                return Err(SketchError::WrongKind {
                    want: "hllpp or llbeta",
                    got: kind,
                })
            }
        };
        let sketch = RegisterSketch::decode_payload(&mut r, flavor)?;
        r.finish()?;
        Ok(sketch)
    }

    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        self.compatible(other)
            .map_err(|what| SketchError::Incompatible { what })?;
        self.merge_unchecked(other);
        Ok(())
    }
}

/// A decoded snapshot of any kind — the back-end's view, which needs no
/// knowledge of the producing estimator to merge and estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum AnySnapshot {
    /// A BFCE Bloom-frame sketch.
    Bloom(BloomSketch),
    /// A HyperLogLog++ / LogLog-β register sketch.
    Registers(RegisterSketch),
}

impl AnySnapshot {
    /// The wire kind of this snapshot.
    pub fn kind(&self) -> SketchKind {
        match self {
            AnySnapshot::Bloom(_) => SketchKind::BloomFrame,
            AnySnapshot::Registers(s) => match s.flavor() {
                RegisterFlavor::HllPp => SketchKind::HllPp,
                RegisterFlavor::LogLogBeta => SketchKind::LogLogBeta,
            },
        }
    }

    /// The cardinality estimate of the state as it stands.
    pub fn estimate(&self) -> f64 {
        match self {
            AnySnapshot::Bloom(s) => s.estimate(),
            AnySnapshot::Registers(s) => s.estimate(),
        }
    }

    /// Decode any `rfid-sketch/v1` snapshot, dispatching on the kind
    /// byte.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let (mut r, kind) = Reader::open(bytes)?;
        let snap = match kind {
            SketchKind::BloomFrame => AnySnapshot::Bloom(BloomSketch::decode_payload(&mut r)?),
            SketchKind::HllPp => AnySnapshot::Registers(RegisterSketch::decode_payload(
                &mut r,
                RegisterFlavor::HllPp,
            )?),
            SketchKind::LogLogBeta => AnySnapshot::Registers(RegisterSketch::decode_payload(
                &mut r,
                RegisterFlavor::LogLogBeta,
            )?),
        };
        r.finish()?;
        Ok(snap)
    }
}

impl Snapshot for AnySnapshot {
    fn snapshot(&self) -> Vec<u8> {
        match self {
            AnySnapshot::Bloom(s) => s.encode(),
            AnySnapshot::Registers(s) => s.encode(),
        }
    }

    fn restore(bytes: &[u8]) -> Result<Self, SketchError> {
        Ok(AnySnapshot::decode(bytes)?)
    }

    fn merge(&mut self, other: &Self) -> Result<(), SketchError> {
        match (self, other) {
            (AnySnapshot::Bloom(a), AnySnapshot::Bloom(b)) => a.merge(b),
            (AnySnapshot::Registers(a), AnySnapshot::Registers(b)) => a.merge(b),
            (a, b) => Err(SketchError::Incompatible {
                what: if a.kind() == b.kind() {
                    "parameters differ"
                } else {
                    "sketch kinds differ"
                },
            }),
        }
    }
}

/// Fold `k` serialized per-reader snapshots into the state of one logical
/// reader covering the union — the general reader-merge path.
///
/// Every snapshot is strictly decoded and checked compatible with the
/// first; any failure aborts the fold with the offending error. By the
/// merge laws the result is bitwise-independent of input order.
pub fn merge_all<'a, I>(snapshots: I) -> Result<AnySnapshot, SketchError>
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut iter = snapshots.into_iter();
    let first = iter.next().ok_or(SketchError::NoSnapshots)?;
    let mut acc = AnySnapshot::restore(first)?;
    for bytes in iter {
        let next = AnySnapshot::restore(bytes)?;
        acc.merge(&next)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn register_sketch(flavor: RegisterFlavor, seed: u32, ids: std::ops::Range<u64>) -> RegisterSketch {
        let mut sk = RegisterSketch::new(flavor, 12, 61, seed);
        for i in ids {
            sk.observe_identity(i + 1);
        }
        sk
    }

    #[test]
    fn restore_of_snapshot_is_identity_for_both_types() {
        let reg = register_sketch(RegisterFlavor::HllPp, 5, 0..10_000);
        let back = RegisterSketch::restore(&reg.snapshot()).expect("restore");
        assert_eq!(back, reg);

        let mut bloom = BloomSketch::empty(8192, &[1, 2, 3], 100);
        let back = BloomSketch::restore(&bloom.snapshot()).expect("restore");
        assert_eq!(back, bloom);
        bloom.merge(&back).expect("self-merge is idempotent");
        assert_eq!(back, bloom);
    }

    #[test]
    fn any_snapshot_round_trips_and_dispatches() {
        let reg = register_sketch(RegisterFlavor::LogLogBeta, 3, 0..500);
        let any = AnySnapshot::decode(&reg.snapshot()).expect("decode");
        assert_eq!(any.kind(), SketchKind::LogLogBeta);
        assert_eq!(any.snapshot(), reg.snapshot());
        assert!((any.estimate() - reg.estimate()).abs() < 1e-12);
    }

    #[test]
    fn merge_all_folds_k_readers_into_the_union() {
        let readers: Vec<Vec<u8>> = (0..8u64)
            .map(|r| register_sketch(RegisterFlavor::HllPp, 77, r * 5_000..(r + 1) * 5_000 + 2_000).snapshot())
            .collect();
        let merged = merge_all(readers.iter().map(|b| b.as_slice())).expect("merge");
        // Union is 0..37_000 + the trailing overlap = 42_000 distinct ids.
        let union = register_sketch(RegisterFlavor::HllPp, 77, 0..42_000);
        assert_eq!(merged.snapshot(), union.snapshot());
    }

    #[test]
    fn merge_all_is_order_invariant_bitwise() {
        let snaps: Vec<Vec<u8>> = (0..5u64)
            .map(|r| register_sketch(RegisterFlavor::HllPp, 9, r * 100..r * 100 + 350).snapshot())
            .collect();
        let fwd = merge_all(snaps.iter().map(|b| b.as_slice())).expect("fwd");
        let rev = merge_all(snaps.iter().rev().map(|b| b.as_slice())).expect("rev");
        assert_eq!(fwd.snapshot(), rev.snapshot());
    }

    #[test]
    fn merge_all_rejects_empty_and_incompatible_inputs() {
        assert_eq!(merge_all(std::iter::empty()).unwrap_err(), SketchError::NoSnapshots);

        let a = register_sketch(RegisterFlavor::HllPp, 1, 0..100).snapshot();
        let b = register_sketch(RegisterFlavor::HllPp, 2, 0..100).snapshot(); // different seed
        let err = merge_all([a.as_slice(), b.as_slice()]).unwrap_err();
        assert_eq!(err, SketchError::Incompatible { what: "sketch hash seeds differ" });

        let c = register_sketch(RegisterFlavor::LogLogBeta, 1, 0..100).snapshot();
        let err = merge_all([a.as_slice(), c.as_slice()]).unwrap_err();
        assert_eq!(err, SketchError::Incompatible { what: "sketch flavors differ" });

        let d = BloomSketch::empty(64, &[1], 10).snapshot();
        let err = merge_all([a.as_slice(), d.as_slice()]).unwrap_err();
        assert_eq!(err, SketchError::Incompatible { what: "sketch kinds differ" });

        let err = merge_all([a.as_slice(), b"garbage".as_slice()]).unwrap_err();
        assert!(matches!(err, SketchError::Wire(WireError::BadMagic)));
    }

    #[test]
    fn failed_merge_leaves_self_unchanged() {
        let mut a = register_sketch(RegisterFlavor::HllPp, 1, 0..100);
        let before = a.snapshot();
        let b = register_sketch(RegisterFlavor::HllPp, 2, 0..100);
        assert!(a.merge(&b).is_err());
        assert_eq!(a.snapshot(), before);
    }

    #[test]
    fn restoring_the_wrong_kind_errors() {
        let reg = register_sketch(RegisterFlavor::HllPp, 1, 0..10).snapshot();
        let err = BloomSketch::restore(&reg).unwrap_err();
        assert_eq!(
            err,
            SketchError::WrongKind { want: "bloom-frame", got: SketchKind::HllPp }
        );
        let bloom = BloomSketch::empty(64, &[1], 10).snapshot();
        let err = RegisterSketch::restore(&bloom).unwrap_err();
        assert_eq!(
            err,
            SketchError::WrongKind { want: "hllpp or llbeta", got: SketchKind::BloomFrame }
        );
    }
}
