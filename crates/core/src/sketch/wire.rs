//! The `rfid-sketch/v1` wire format.
//!
//! A hand-rolled binary codec in the spirit of the `rfid-bench/v1` JSON
//! reports: a versioned magic header up front so readers can refuse
//! formats they do not understand, followed by a one-byte sketch kind, a
//! kind-specific little-endian payload, and a trailing 64-bit checksum.
//! Decoding is **strict**: unknown versions, unknown kinds, truncated
//! payloads, corrupt checksums, out-of-range fields, and trailing garbage
//! each surface as a distinct [`WireError`], never a panic — the format is
//! fuzzed (`fuzz/fuzz_targets/snapshot_roundtrip.rs`) and the decoder is
//! the trust boundary for snapshots arriving from other readers.
//!
//! Every allocation the decoder performs is bounded by a validated field
//! (`w <= 2^24` slots, `m <= 2^16` registers, `k <= 32` seeds), so a
//! hostile length prefix cannot balloon memory.
//!
//! The encoders in this module are canonical: for every byte string the
//! decoder accepts, re-encoding the decoded value reproduces the input
//! byte for byte. That bijection is the round-trip oracle the fuzz target
//! asserts.

use rfid_hash::mix64;

/// Magic header opening every snapshot, version included.
pub const MAGIC: &[u8; 15] = b"rfid-sketch/v1\n";

/// Version-agnostic prefix of [`MAGIC`], used to tell "not a sketch at
/// all" apart from "a sketch version this build does not speak".
pub const MAGIC_STEM: &[u8; 12] = b"rfid-sketch/";

/// Sketch kind tags (the byte after the magic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SketchKind {
    /// A BFCE Bloom-frame sketch (busy bitmap + frame parameters).
    BloomFrame = 1,
    /// A HyperLogLog++ register sketch.
    HllPp = 2,
    /// A LogLog-β register sketch.
    LogLogBeta = 3,
}

impl SketchKind {
    /// Parse a kind byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(SketchKind::BloomFrame),
            2 => Some(SketchKind::HllPp),
            3 => Some(SketchKind::LogLogBeta),
            _ => None,
        }
    }

    /// Stable lower-case name, used by the CLI and error messages.
    pub fn name(self) -> &'static str {
        match self {
            SketchKind::BloomFrame => "bloom-frame",
            SketchKind::HllPp => "hllpp",
            SketchKind::LogLogBeta => "llbeta",
        }
    }
}

impl std::fmt::Display for SketchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a byte string is not a valid `rfid-sketch/v1` snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The bytes do not start with `rfid-sketch/` at all.
    BadMagic,
    /// The bytes carry the `rfid-sketch/` stem but a version other than
    /// `v1` — a newer (or corrupted) format this build refuses to guess
    /// at.
    UnsupportedVersion,
    /// The payload ends before a field of `need` more bytes at `offset`.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the field needed.
        need: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// The kind byte is not a known sketch kind.
    UnknownKind(u8),
    /// The trailing checksum does not match the preceding bytes.
    BadChecksum {
        /// Checksum recomputed over the received bytes.
        computed: u64,
        /// Checksum stored in the trailer.
        stored: u64,
    },
    /// A field value violates the format's invariants.
    Invalid(&'static str),
    /// Well-formed snapshot followed by garbage.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "not an rfid-sketch snapshot (bad magic)"),
            WireError::UnsupportedVersion => {
                write!(f, "rfid-sketch version not supported (this build speaks v1)")
            }
            WireError::Truncated { offset, need, have } => write!(
                f,
                "truncated snapshot: needed {need} bytes at offset {offset}, {have} left"
            ),
            WireError::UnknownKind(b) => write!(f, "unknown sketch kind {b:#04x}"),
            WireError::BadChecksum { computed, stored } => write!(
                f,
                "checksum mismatch: computed {computed:#018x}, stored {stored:#018x}"
            ),
            WireError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
            WireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete snapshot")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Checksum over the header + payload bytes: a mix64 chain folded over
/// 8-byte little-endian chunks (final partial chunk zero-padded), with the
/// total length mixed in so padding cannot alias.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut acc = mix64(bytes.len() as u64 ^ 0x5EED_5EED_5EED_5EED);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let mut word = [0u8; 8];
        word.copy_from_slice(chunk);
        acc = mix64(acc ^ u64::from_le_bytes(word));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = [0u8; 8];
        // analysis:allow(panic-path): chunks_exact(8) remainder is < 8 bytes, so it always fits the 8-byte word
        word[..rem.len()].copy_from_slice(rem);
        acc = mix64(acc ^ u64::from_le_bytes(word));
    }
    acc
}

/// Little-endian append-only encoder for snapshot payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start a snapshot: magic followed by the kind byte.
    pub fn new(kind: SketchKind) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(MAGIC);
        buf.push(kind as u8);
        Self { buf }
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Close the snapshot: append the checksum trailer and return the
    /// finished byte string.
    pub fn finish(mut self) -> Vec<u8> {
        let sum = checksum(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Strict little-endian decoder over a snapshot byte string.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Open a snapshot: verify the magic, the checksum trailer, and return
    /// the reader positioned at the kind byte together with that kind.
    pub fn open(bytes: &'a [u8]) -> Result<(Self, SketchKind), WireError> {
        if bytes.len() < MAGIC.len() {
            // Short prefixes of the magic are still "not a sketch".
            return if MAGIC.starts_with(bytes) && !bytes.is_empty() {
                Err(WireError::Truncated {
                    offset: bytes.len(),
                    need: MAGIC.len() - bytes.len(),
                    have: 0,
                })
            } else {
                Err(WireError::BadMagic)
            };
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            // analysis:allow(panic-path): MAGIC_STEM is a prefix of MAGIC and bytes.len() >= MAGIC.len() was just checked
            return if &bytes[..MAGIC_STEM.len()] == MAGIC_STEM {
                Err(WireError::UnsupportedVersion)
            } else {
                Err(WireError::BadMagic)
            };
        }
        if bytes.len() < MAGIC.len() + 1 + 8 {
            return Err(WireError::Truncated {
                offset: bytes.len(),
                need: MAGIC.len() + 1 + 8 - bytes.len(),
                have: 0,
            });
        }
        let body = &bytes[..bytes.len() - 8];
        let mut stored = [0u8; 8];
        stored.copy_from_slice(&bytes[bytes.len() - 8..]);
        let stored = u64::from_le_bytes(stored);
        let computed = checksum(body);
        if computed != stored {
            return Err(WireError::BadChecksum { computed, stored });
        }
        let mut reader = Self {
            bytes: body,
            pos: MAGIC.len(),
        };
        let kind_byte = reader.u8()?;
        let kind = SketchKind::from_byte(kind_byte).ok_or(WireError::UnknownKind(kind_byte))?;
        Ok((reader, kind))
    }

    fn take(&mut self, need: usize) -> Result<&'a [u8], WireError> {
        let have = self.bytes.len() - self.pos;
        if have < need {
            return Err(WireError::Truncated {
                offset: self.pos,
                need,
                have,
            });
        }
        let out = &self.bytes[self.pos..self.pos + need];
        self.pos += need;
        Ok(out)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Assert the payload is fully consumed (the checksum trailer was
    /// already stripped by [`Reader::open`]).
    pub fn finish(self) -> Result<(), WireError> {
        let left = self.bytes.len() - self.pos;
        if left != 0 {
            return Err(WireError::TrailingBytes(left));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = Writer::new(SketchKind::HllPp);
        w.u8(12);
        w.u32(0xDEAD_BEEF);
        w.u16(513);
        w.bytes(&[1, 2, 3]);
        w.finish()
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let (mut r, kind) = Reader::open(&bytes).expect("open");
        assert_eq!(kind, SketchKind::HllPp);
        assert_eq!(r.u8().unwrap(), 12);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.bytes(3).unwrap(), &[1, 2, 3]);
        r.finish().expect("fully consumed");
    }

    #[test]
    fn bad_magic_is_detected() {
        assert_eq!(Reader::open(b"not a sketch at all").unwrap_err(), WireError::BadMagic);
        assert_eq!(Reader::open(&[]).unwrap_err(), WireError::BadMagic);
    }

    #[test]
    fn future_versions_are_refused_distinctly() {
        let mut bytes = sample();
        bytes[13] = b'2'; // rfid-sketch/v2
        assert_eq!(Reader::open(&bytes).unwrap_err(), WireError::UnsupportedVersion);
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = match Reader::open(&bytes[..cut]) {
                Err(e) => e,
                Ok((mut r, _)) => {
                    // Header + checksum may still parse; field reads or the
                    // finish check must then fail.
                    let fields = (|| -> Result<(), WireError> {
                        r.u8()?;
                        r.u32()?;
                        r.u16()?;
                        r.bytes(3)?;
                        r.finish()
                    })();
                    fields.expect_err("truncated payload parsed cleanly")
                }
            };
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::BadMagic | WireError::BadChecksum { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = sample();
        let flip = MAGIC.len() + 2;
        bytes[flip] ^= 0x40;
        assert!(matches!(
            Reader::open(&bytes).unwrap_err(),
            WireError::BadChecksum { .. }
        ));
    }

    #[test]
    fn unknown_kind_is_reported() {
        let mut w = Writer::new(SketchKind::BloomFrame);
        w.u8(0);
        let mut bytes = w.finish();
        bytes[MAGIC.len()] = 200;
        // Re-seal the checksum so the kind check is what fires.
        let n = bytes.len();
        let sum = checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(Reader::open(&bytes).unwrap_err(), WireError::UnknownKind(200));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let bytes = sample();
        let (mut r, _) = Reader::open(&bytes).unwrap();
        r.u8().unwrap();
        assert!(matches!(r.finish().unwrap_err(), WireError::TrailingBytes(_)));
    }

    #[test]
    fn checksum_depends_on_length_and_content() {
        assert_ne!(checksum(&[]), checksum(&[0]));
        assert_ne!(checksum(&[0]), checksum(&[0, 0]));
        assert_ne!(checksum(&[1, 2, 3]), checksum(&[1, 2, 4]));
        assert_eq!(checksum(&[9; 17]), checksum(&[9; 17]));
    }
}
