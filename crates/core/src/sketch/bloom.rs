//! A snapshotable BFCE Bloom frame.
//!
//! [`BloomSketch`] captures everything a back-end needs to treat one
//! reader's fully-observed Bloom frame as mergeable estimator state: the
//! frame geometry (`w`, `k`), the broadcast hash seeds, the persistence
//! numerator, and the busy bitmap. Two sketches built from the **same
//! seeds and persistence** merge by slot-wise OR, and by the argument in
//! [`crate::multiset`] the merged bitmap is *exactly* the frame the union
//! population would have produced — so [`BloomSketch::estimate`] on the
//! merge is the union-cardinality estimate, each shared tag counted once.
//!
//! This is the `multiset::estimate_union` path generalized from "frames
//! in one process" to "snapshots from k readers, possibly over the wire":
//! the sketch serializes under `rfid-sketch/v1` (kind 1) and validates
//! seed/persistence agreement at merge time instead of assuming it.

use super::wire::{Reader, SketchKind, WireError, Writer};
use crate::params::BfceConfig;
use crate::theory::{estimate_from_rho, P_GRID};
use rfid_sim::{BitFrame, Bitmap};

/// Frame-length ceiling accepted on decode: `2^24` slots is three orders
/// of magnitude past the paper's `w = 8192`, while keeping the bitmap a
/// hostile snapshot can make us allocate at 2 MiB.
pub const MAX_WIRE_W: usize = 1 << 24;

/// Hash-seed count ceiling accepted on decode (matches `BloomPlan`'s own
/// 32-seed limit).
pub const MAX_WIRE_K: usize = 32;

/// One reader's Bloom frame as checkpointable, mergeable state.
#[derive(Debug, Clone, PartialEq)]
pub struct BloomSketch {
    w: usize,
    seeds: Vec<u32>,
    p_n: u32,
    busy: Bitmap,
}

impl BloomSketch {
    /// Empty sketch (no busy slots yet) for a `w`-slot frame run with
    /// `seeds` and persistence numerator `p_n`.
    ///
    /// Panics on out-of-range parameters; these are configuration errors
    /// checked once at protocol setup, not data conditions.
    pub fn empty(w: usize, seeds: &[u32], p_n: u32) -> Self {
        assert!((1..=MAX_WIRE_W).contains(&w), "w {w} outside [1, 2^24]");
        assert!(
            (1..=MAX_WIRE_K).contains(&seeds.len()),
            "need 1..=32 hash seeds"
        );
        assert!((1..P_GRID).contains(&p_n), "p_n must lie in [1, 1023]");
        Self {
            w,
            seeds: seeds.to_vec(),
            p_n,
            busy: Bitmap::zeros(w),
        }
    }

    /// Capture a fully-observed frame run under `cfg` with the given
    /// seeds and persistence.
    ///
    /// Panics if the frame was truncated (`observed() != cfg.w`) or the
    /// seed count disagrees with `cfg.k` — the snapshot would otherwise
    /// misrepresent what the reader sensed.
    pub fn from_frame(cfg: &BfceConfig, frame: &BitFrame, seeds: &[u32], p_n: u32) -> Self {
        assert_eq!(
            frame.observed(),
            cfg.w,
            "only fully-observed frames can be snapshotted"
        );
        assert_eq!(seeds.len(), cfg.k, "seed count must match cfg.k");
        let mut sketch = Self::empty(cfg.w, seeds, p_n);
        sketch.busy = frame.busy_bitmap().clone();
        sketch
    }

    /// Frame length `w`.
    pub fn w(&self) -> usize {
        self.w
    }

    /// The broadcast hash seeds (length = `k`).
    pub fn seeds(&self) -> &[u32] {
        &self.seeds
    }

    /// Persistence numerator (`p = p_n / 1024`).
    pub fn p_n(&self) -> u32 {
        self.p_n
    }

    /// The busy bitmap.
    pub fn busy(&self) -> &Bitmap {
        &self.busy
    }

    /// Idle ratio of the (possibly merged) frame.
    pub fn rho(&self) -> f64 {
        (self.w - self.busy.count_ones()) as f64 / self.w as f64
    }

    /// Check merge compatibility: identical geometry, seeds, and
    /// persistence.
    pub fn compatible(&self, other: &BloomSketch) -> Result<(), &'static str> {
        if self.w != other.w {
            return Err("frame lengths differ");
        }
        if self.seeds != other.seeds {
            return Err("hash seeds differ");
        }
        if self.p_n != other.p_n {
            return Err("persistence numerators differ");
        }
        Ok(())
    }

    /// Slot-wise OR merge. Panics on incompatibility; the
    /// [`Snapshot`](super::Snapshot) impl checks first and errors.
    pub(super) fn merge_unchecked(&mut self, other: &BloomSketch) {
        self.busy.or_assign(&other.busy);
    }

    /// Theorem 2 estimate from the sketch's idle ratio, with the same
    /// degenerate-frame handling as [`crate::multiset::estimate_union`]:
    /// a saturated frame falls back to the one-idle-slot lower bound, an
    /// all-idle frame estimates zero.
    pub fn estimate(&self) -> f64 {
        let rho = self.rho();
        let k = self.seeds.len();
        let p = self.p_n as f64 / P_GRID as f64;
        if rho <= 0.0 {
            estimate_from_rho(1.0 / self.w as f64, self.w, k, p)
        } else if rho >= 1.0 {
            0.0
        } else {
            estimate_from_rho(rho, self.w, k, p)
        }
    }

    /// Canonical `rfid-sketch/v1` encoding (kind 1): `w` (u32), `k` (u8),
    /// `k` seeds (u32 each), `p_n` (u16), then the busy bitmap packed
    /// 8 slots per byte, LSB-first, trailing padding bits zero.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new(SketchKind::BloomFrame);
        w.u32(self.w as u32);
        w.u8(self.seeds.len() as u8);
        for &s in &self.seeds {
            w.u32(s);
        }
        w.u16(self.p_n as u16);
        // The Bitmap's backing words are LSB-first with a zeroed tail, so
        // slicing them into bytes yields the packed form directly.
        let n_bytes = self.w.div_ceil(8);
        let mut packed = Vec::with_capacity(n_bytes);
        'outer: for word in self.busy.words() {
            for byte in word.to_le_bytes() {
                if packed.len() == n_bytes {
                    break 'outer;
                }
                packed.push(byte);
            }
        }
        packed.resize(n_bytes, 0);
        w.bytes(&packed);
        w.finish()
    }

    /// Decode the payload following the kind byte (header already
    /// consumed by [`Reader::open`]), validating ranges and the
    /// zero-padding canonical-form rule so re-encoding reproduces the
    /// input exactly.
    pub(super) fn decode_payload(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let w = r.u32()? as usize;
        if !(1..=MAX_WIRE_W).contains(&w) {
            return Err(WireError::Invalid("frame length outside [1, 2^24]"));
        }
        let k = r.u8()? as usize;
        if !(1..=MAX_WIRE_K).contains(&k) {
            return Err(WireError::Invalid("seed count outside [1, 32]"));
        }
        let mut seeds = Vec::with_capacity(k);
        for _ in 0..k {
            seeds.push(r.u32()?);
        }
        let p_n = r.u16()? as u32;
        if !(1..P_GRID).contains(&p_n) {
            return Err(WireError::Invalid("persistence numerator outside [1, 1023]"));
        }
        let n_bytes = w.div_ceil(8);
        let packed = r.bytes(n_bytes)?;
        let mut busy = Bitmap::zeros(w);
        let tail_bits = w % 8;
        if tail_bits != 0 {
            // analysis:allow(panic-path): r.bytes(n_bytes) returned exactly n_bytes bytes, and w >= 1 makes n_bytes >= 1
            let tail = packed[n_bytes - 1];
            if tail >> tail_bits != 0 {
                return Err(WireError::Invalid("nonzero padding past the last slot"));
            }
        }
        for (word_index, chunk) in packed.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            // analysis:allow(panic-path): chunks(8) yields at most 8 bytes, which always fits the 8-byte word
            word[..chunk.len()].copy_from_slice(chunk);
            busy.or_word(word_index, u64::from_le_bytes(word));
        }
        Ok(Self { w, seeds, p_n, busy })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::standalone_frame;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use rfid_sim::{RfidSystem, Tag, TagPopulation};

    fn tag(i: u64) -> Tag {
        Tag {
            id: i + 1,
            rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(0xAB),
        }
    }

    fn sketch_for(tags: Vec<Tag>, seeds: &[u32], p_n: u32, cfg: &BfceConfig) -> BloomSketch {
        let mut system = RfidSystem::new(TagPopulation::new(tags));
        let plan = crate::estimator::BloomPlan::new(cfg, seeds, p_n);
        let frame = system.run_bitslot_frame(cfg.w, &plan);
        BloomSketch::from_frame(cfg, &frame, seeds, p_n)
    }

    fn seeds(seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..3).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn merge_matches_the_union_frame_bitwise() {
        let cfg = BfceConfig::paper();
        let s = seeds(1);
        let p_n = 40;
        let mut a = sketch_for((0..30_000).map(tag).collect(), &s, p_n, &cfg);
        let b = sketch_for((20_000..60_000).map(tag).collect(), &s, p_n, &cfg);
        let union = sketch_for((0..60_000).map(tag).collect(), &s, p_n, &cfg);
        a.merge_unchecked(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn estimate_agrees_with_estimate_union() {
        let cfg = BfceConfig::paper();
        let s = seeds(2);
        let p_n = 35;
        let mut system = RfidSystem::new(TagPopulation::new((0..50_000).map(tag).collect()));
        let plan = crate::estimator::BloomPlan::new(&cfg, &s, p_n);
        let frame = system.run_bitslot_frame(cfg.w, &plan);
        let sketch = BloomSketch::from_frame(&cfg, &frame, &s, p_n);
        let union = crate::multiset::estimate_union(&cfg, &[frame], p_n);
        assert!((sketch.estimate() - union.n_hat).abs() < 1e-9);
    }

    #[test]
    fn standalone_frame_feeds_the_sketch() {
        let cfg = BfceConfig::paper();
        let mut system = RfidSystem::new(TagPopulation::new((0..40_000).map(tag).collect()));
        // standalone_frame draws its own seeds; reproduce them from the
        // same rng stream to label the sketch.
        let mut rng = StdRng::seed_from_u64(9);
        let mut seed_rng = StdRng::seed_from_u64(9);
        let s: Vec<u32> = (0..cfg.k).map(|_| seed_rng.next_u32()).collect();
        let frame = standalone_frame(&cfg, &mut system, 60, &mut rng);
        let sketch = BloomSketch::from_frame(&cfg, &frame, &s, 60);
        let rel = (sketch.estimate() - 40_000.0).abs() / 40_000.0;
        assert!(rel < 0.05, "estimate {} rel {rel}", sketch.estimate());
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let cfg = BfceConfig::paper();
        let s = seeds(3);
        for n in [0usize, 1, 1000, 80_000] {
            let sketch = sketch_for((0..n as u64).map(tag).collect(), &s, 50, &cfg);
            let bytes = sketch.encode();
            let (mut r, kind) = Reader::open(&bytes).expect("open");
            assert_eq!(kind, SketchKind::BloomFrame);
            let back = BloomSketch::decode_payload(&mut r).expect("decode");
            r.finish().expect("consumed");
            assert_eq!(back, sketch, "n = {n}");
            assert_eq!(back.encode(), bytes, "re-encode bijection at n = {n}");
        }
    }

    #[test]
    fn non_byte_aligned_widths_round_trip() {
        for w in [1usize, 7, 8, 9, 63, 64, 65, 1000] {
            let mut sk = BloomSketch::empty(w, &[1, 2, 3], 100);
            for i in (0..w).step_by(3) {
                sk.busy.set(i);
            }
            let bytes = sk.encode();
            let (mut r, _) = Reader::open(&bytes).expect("open");
            let back = BloomSketch::decode_payload(&mut r).expect("decode");
            r.finish().expect("consumed");
            assert_eq!(back, sk, "w = {w}");
            assert_eq!(back.encode(), bytes, "w = {w}");
        }
    }

    #[test]
    fn nonzero_padding_is_rejected() {
        let sk = BloomSketch::empty(9, &[1], 10); // 2 packed bytes, 7 padding bits
        let mut bytes = sk.encode();
        // The last packed byte sits just before the 8-byte checksum.
        let idx = bytes.len() - 8 - 1;
        bytes[idx] |= 0x80;
        let n = bytes.len();
        let sum = super::super::wire::checksum(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let (mut r, _) = Reader::open(&bytes).expect("open");
        assert_eq!(
            BloomSketch::decode_payload(&mut r).unwrap_err(),
            WireError::Invalid("nonzero padding past the last slot")
        );
    }

    #[test]
    fn incompatible_sketches_are_detected() {
        let base = BloomSketch::empty(64, &[1, 2, 3], 10);
        assert!(base.compatible(&BloomSketch::empty(64, &[1, 2, 3], 10)).is_ok());
        assert!(base.compatible(&BloomSketch::empty(128, &[1, 2, 3], 10)).is_err());
        assert!(base.compatible(&BloomSketch::empty(64, &[1, 2, 4], 10)).is_err());
        assert!(base.compatible(&BloomSketch::empty(64, &[1, 2, 3], 11)).is_err());
    }

    #[test]
    fn degenerate_frames_estimate_like_estimate_union() {
        let all_idle = BloomSketch::empty(64, &[1], 10);
        assert_eq!(all_idle.estimate(), 0.0);
        let mut saturated = BloomSketch::empty(64, &[1], 10);
        for i in 0..64 {
            saturated.busy.set(i);
        }
        let expect = estimate_from_rho(1.0 / 64.0, 64, 1, 10.0 / 1024.0);
        assert!((saturated.estimate() - expect).abs() < 1e-9);
    }
}
