//! Deterministic smoke pass over the sketch-wire fuzz surface.
//!
//! `fuzz/` proper needs nightly + `cargo-fuzz`; this test keeps the
//! `snapshot_roundtrip` body honest on every `cargo test` by replaying
//! the seed corpus (valid snapshots of every kind and tier, plus known
//! rejects) and then hammering the body with deterministic mutations of
//! the seeds (byte flips, truncations, splices, header surgery) from a
//! fixed-seed xorshift. Any crash the nightly fuzzer finds lands as a
//! corpus file here and reproduces forever after.

use rfid_bfce::sketch::fuzz::snapshot_roundtrip;
use std::path::{Path, PathBuf};

/// Mutations tried per corpus seed. Small enough to stay sub-second,
/// large enough to shake out off-by-ones around the mutated regions.
const MUTATIONS_PER_SEED: u64 = 128;

fn corpus_dir() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .expect("crates/core sits two levels below the root")
        .join("fuzz")
        .join("corpus")
        .join("snapshot_roundtrip")
}

fn seeds() -> Vec<(PathBuf, Vec<u8>)> {
    let dir = corpus_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read corpus {}: {e}", dir.display()));
    let mut out: Vec<(PathBuf, Vec<u8>)> = entries
        .flatten()
        .map(|entry| {
            let path = entry.path();
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("read seed {}: {e}", path.display()));
            (path, bytes)
        })
        .collect();
    out.sort();
    assert!(!out.is_empty(), "empty corpus at {}", dir.display());
    out
}

/// Fixed-seed xorshift64* — the mutation schedule must be identical on
/// every host so a failure here is a failure everywhere.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Flip bytes/bits, truncate, splice, or corrupt the header,
/// deterministically. Wire-aware where it matters: single-bit flips probe
/// the checksum, and tail-region edits probe the trailing-bytes and
/// padding rules.
fn mutate(seed: &[u8], rng: &mut XorShift) -> Vec<u8> {
    let mut bytes = seed.to_vec();
    if bytes.is_empty() {
        return vec![(rng.next() & 0xFF) as u8];
    }
    match rng.next() % 6 {
        0 => {
            // Flip a handful of bytes.
            for _ in 0..1 + rng.next() % 8 {
                let i = (rng.next() as usize) % bytes.len();
                bytes[i] = (rng.next() & 0xFF) as u8;
            }
        }
        1 => {
            // Single-bit flip: the checksum must catch it.
            let i = (rng.next() as usize) % bytes.len();
            bytes[i] ^= 1 << (rng.next() % 8);
        }
        2 => {
            // Truncate anywhere, including inside the magic.
            bytes.truncate((rng.next() as usize) % bytes.len());
        }
        3 => {
            // Splice a chunk onto itself (duplicated payloads, trailing
            // bytes after a valid checksum).
            let at = (rng.next() as usize) % bytes.len();
            let chunk: Vec<u8> = bytes[at..].to_vec();
            bytes.extend_from_slice(&chunk);
        }
        4 => {
            // Header surgery: kind byte and version digit live up front.
            let at = (rng.next() as usize) % bytes.len().min(16);
            bytes[at] = (rng.next() & 0xFF) as u8;
        }
        _ => {
            // Append noise — must be rejected as trailing bytes.
            for _ in 0..1 + rng.next() % 9 {
                bytes.push((rng.next() & 0xFF) as u8);
            }
        }
    }
    bytes
}

#[test]
fn snapshot_roundtrip_smoke() {
    let mut rng = XorShift(0x5EED_0BAD_F00D_u64);
    for (path, seed) in seeds() {
        snapshot_roundtrip(&seed);
        for _ in 0..MUTATIONS_PER_SEED {
            let mutant = mutate(&seed, &mut rng);
            // A panic's message won't name the input, so wrap with context.
            let outcome = std::panic::catch_unwind(|| snapshot_roundtrip(&mutant));
            if outcome.is_err() {
                panic!(
                    "snapshot_roundtrip panicked on a mutation of {} \
                     ({} bytes); save the input as a corpus file to pin it",
                    path.display(),
                    mutant.len()
                );
            }
        }
    }
}

#[test]
fn corpus_has_an_accepted_seed_of_every_kind() {
    // The corpus must keep exercising the *accept* path of all three
    // sketch kinds, not just rejects — otherwise mutations only ever
    // prove that garbage errors out.
    use rfid_bfce::AnySnapshot;
    let mut kinds = std::collections::BTreeSet::new();
    for (_, seed) in seeds() {
        if let Ok(snapshot) = AnySnapshot::decode(&seed) {
            kinds.insert(snapshot.kind().name());
        }
    }
    for kind in ["bloom-frame", "hllpp", "llbeta"] {
        assert!(kinds.contains(kind), "no valid {kind} seed in corpus");
    }
}
