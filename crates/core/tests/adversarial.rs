//! Adversarial deployments: what breaks BFCE's lightweight tag-side
//! machinery, and what survives.
//!
//! The paper's Section IV-E2 hash draws all randomness from the pre-stored
//! 32-bit `RN`. These tests pin down the consequences: the scheme is
//! sound exactly as long as RNs are (near-)unique, which is a deployment
//! requirement, not a protocol property.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_bfce::{Bfce, BfceConfig, HasherKind};
use rfid_sim::{Accuracy, CardinalityEstimator, RfidSystem, Tag, TagPopulation};

fn system_with_rns(n: usize, rn_of: impl Fn(u64) -> u32) -> RfidSystem {
    let tags = (0..n as u64)
        .map(|i| Tag {
            id: i * 7 + 1,
            rn: rn_of(i),
        })
        .collect();
    RfidSystem::new(TagPopulation::new(tags))
}

#[test]
fn identical_rns_break_the_xor_bitget_scheme() {
    // Every tag shares one RN: the XOR hash maps all of them onto the same
    // k slots and the persistence sampler makes identical draws, so the
    // whole population is indistinguishable from a single tag. The
    // estimate must collapse catastrophically — this test documents the
    // failure mode rather than hiding it.
    let mut sys = system_with_rns(50_000, |_| 0xDEAD_BEEF);
    let mut rng = StdRng::seed_from_u64(1);
    let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
    assert!(
        run.n_hat() < 5_000.0,
        "shared RNs should collapse the estimate; got {}",
        run.n_hat()
    );
}

#[test]
fn realistic_rn_collision_rates_are_harmless() {
    // Force far more collisions than a real 32-bit deployment would see
    // (each RN duplicated once over half the space): the estimate barely
    // moves, because collisions only correlate tag *pairs*.
    let n = 60_000usize;
    let mut sys = system_with_rns(n, |i| {
        ((i % (n as u64 / 2)) as u32).wrapping_mul(0x9E37_79B9)
    });
    let mut rng = StdRng::seed_from_u64(2);
    let run = Bfce::paper().run(&mut sys, Accuracy::paper_default(), &mut rng);
    let rel = run.report.relative_error(n);
    // Duplicated RNs halve the *effective* distinct-behaviour count in the
    // worst case; with pairwise duplication the bias stays bounded.
    assert!(
        rel < 0.55,
        "pairwise RN duplication should not collapse the estimate: rel {rel}"
    );
    // And the common case — unique RNs — is accurate (control).
    let mut control = system_with_rns(n, |i| (i as u32).wrapping_mul(0x9E37_79B9));
    let control_run =
        Bfce::paper().run(&mut control, Accuracy::paper_default(), &mut rng);
    assert!(control_run.report.relative_error(n) < 0.05);
}

#[test]
fn id_based_hash_does_not_rescue_shared_rns_alone() {
    // Switching to the full-avalanche ID hash spreads the slots, but the
    // paper's persistence mechanism still keys off RN: with one shared RN
    // all tags make the same respond/stay-silent draws, inflating or
    // deflating the realized load by an unknowable factor. The estimate is
    // better than XOR-bitget's single-tag collapse but still unreliable —
    // RN uniqueness is load-bearing for the whole design.
    let cfg = BfceConfig {
        hasher: HasherKind::Mix64,
        ..BfceConfig::paper()
    };
    let n = 50_000usize;
    let mut worst: f64 = 0.0;
    for seed in 0..6 {
        let mut sys = system_with_rns(n, |_| 0x1234_5678);
        let mut rng = StdRng::seed_from_u64(seed);
        let run = Bfce::new(cfg).run(&mut sys, Accuracy::paper_default(), &mut rng);
        worst = worst.max(run.report.relative_error(n));
    }
    assert!(
        worst > 0.10,
        "expected visible bias from correlated persistence; worst rel {worst}"
    );
}

#[test]
fn structured_rns_bias_the_xor_hash_by_half_p() {
    // Subtler than shared RNs: assigning RN = i * odd_constant
    // equidistributes the low 13 bits, so every slot's coverage count is
    // nearly deterministic (12-13 tags) instead of binomial. By Jensen,
    // E[(1-p)^M] >= (1-p)^(E[M]): the regularized frame has *fewer* idle
    // slots than the e^(-lambda) model predicts, and the inversion
    // overestimates n by a relative ~p/2. At the probed p_s this is a
    // small but systematic positive bias, measurable across repetitions.
    use rfid_bfce::estimator::standalone_frame;
    use rfid_bfce::theory::estimate_from_rho;
    let truth = 100_000usize;
    let p_n = 45u32; // p ~ 0.044, lambda ~ 1.6: predicted bias ~ +2.2%
    let cfg = BfceConfig::paper();
    let p = p_n as f64 / 1024.0;
    let mut sum = 0.0;
    let rounds = 20;
    for seed in 0..rounds {
        let mut sys = system_with_rns(truth, |i| {
            (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(seed as u32)
        });
        let mut rng = StdRng::seed_from_u64(seed * 7 + 1);
        let frame = standalone_frame(&cfg, &mut sys, p_n, &mut rng);
        sum += estimate_from_rho(frame.rho(), cfg.w, cfg.k, p);
    }
    let mean = sum / rounds as f64;
    let bias = (mean - truth as f64) / truth as f64;
    assert!(
        (0.01..0.04).contains(&bias),
        "expected the Jensen bias ~ p/2 = {:.3}, measured {bias:.4}",
        p / 2.0
    );
}

#[test]
fn sequential_ids_with_unique_rns_are_fine_for_both_hashers() {
    // The inverse experiment: adversarially structured IDs, healthy RNs.
    for hasher in [HasherKind::XorBitget, HasherKind::Mix64] {
        let cfg = BfceConfig {
            hasher,
            ..BfceConfig::paper()
        };
        let n = 40_000usize;
        let tags: Vec<Tag> = (0..n as u64)
            .map(|i| Tag {
                id: 1_000_000 + i, // perfectly sequential EPCs
                rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(7),
            })
            .collect();
        let mut sys = RfidSystem::new(TagPopulation::new(tags));
        let mut rng = StdRng::seed_from_u64(9);
        let report =
            Bfce::new(cfg).estimate(&mut sys, Accuracy::paper_default(), &mut rng);
        assert!(
            report.relative_error(n) < 0.05,
            "{hasher:?}: rel {}",
            report.relative_error(n)
        );
    }
}
