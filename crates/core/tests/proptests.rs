//! Property-based tests for the BFCE theory layer (Theorems 1–4).

use proptest::prelude::*;
use rfid_bfce::theory::{
    estimate_from_rho, expected_rho, f1, f2, gamma, lambda, meets_requirement,
    optimal_p, sigma_x, OptimalP,
};
use rfid_stats::d_for_delta;

proptest! {
    #[test]
    fn lambda_is_linear_in_n(
        n in 0.0f64..1e7,
        pn in 1u32..1024,
    ) {
        let p = pn as f64 / 1024.0;
        let l1 = lambda(n, 8192, 3, p);
        let l2 = lambda(2.0 * n, 8192, 3, p);
        prop_assert!((l2 - 2.0 * l1).abs() < 1e-9 * l2.max(1.0));
    }

    #[test]
    fn expected_rho_and_sigma_are_well_formed(l in 0.0f64..100.0) {
        let rho = expected_rho(l);
        prop_assert!((0.0..=1.0).contains(&rho));
        let s = sigma_x(l);
        prop_assert!((0.0..=0.5).contains(&s), "sigma = {s}");
    }

    #[test]
    fn estimator_inverts_expectation_exactly(
        l in 1e-4f64..30.0,
        pn in 1u32..1024,
    ) {
        // Draw the load directly (avoiding degenerate all-idle/all-busy
        // regions) and derive the cardinality that produces it.
        let p = pn as f64 / 1024.0;
        let n = l * 8192.0 / (3.0 * p);
        let rho = expected_rho(lambda(n, 8192, 3, p));
        prop_assume!(rho > 0.0 && rho < 1.0);
        let n_hat = estimate_from_rho(rho, 8192, 3, p);
        prop_assert!(((n_hat - n) / n).abs() < 1e-9);
    }

    #[test]
    fn f1_nonpositive_f2_nonnegative(
        n in 1.0f64..1e7,
        pn in 1u32..1024,
        eps in 0.01f64..0.5,
    ) {
        let p = pn as f64 / 1024.0;
        let a = f1(n, 8192, 3, p, eps);
        let b = f2(n, 8192, 3, p, eps);
        if a.is_finite() {
            prop_assert!(a <= 1e-12, "f1 = {a}");
        }
        if b.is_finite() {
            prop_assert!(b >= -1e-12, "f2 = {b}");
        }
    }

    #[test]
    fn provable_optimal_p_satisfies_and_is_minimal(
        n_low in 2_000.0f64..2e6,
        eps in 0.03f64..0.3,
        delta in 0.03f64..0.3,
    ) {
        let d = d_for_delta(delta);
        match optimal_p(n_low, 8192, 3, eps, d, 1024) {
            OptimalP::Provable(pn) => {
                let p = pn as f64 / 1024.0;
                prop_assert!(meets_requirement(n_low, 8192, 3, p, eps, d));
                if pn > 1 {
                    let prev = (pn - 1) as f64 / 1024.0;
                    prop_assert!(!meets_requirement(n_low, 8192, 3, prev, eps, d));
                }
            }
            OptimalP::BestEffort(pn) => {
                // Fallback only ever happens for small lower bounds, and
                // the chosen numerator is still on the grid.
                prop_assert!((1..1024).contains(&pn));
                prop_assert!(n_low < 10_000.0, "unexpected fallback at {n_low}");
            }
        }
    }

    #[test]
    fn theorem_4_holds_across_the_design_range(
        n_low in 5_000.0f64..1e6,
        delta in 0.05f64..0.3,
        factor in 1.0f64..2.0,
    ) {
        // If the minimal provable p meets the requirement at n_low, it
        // meets it at any n in [n_low, 2 n_low] (the c = 0.5 design range).
        let eps = 0.05;
        let d = d_for_delta(delta);
        if let OptimalP::Provable(pn) = optimal_p(n_low, 8192, 3, eps, d, 1024) {
            let p = pn as f64 / 1024.0;
            prop_assert!(
                meets_requirement(n_low * factor, 8192, 3, p, eps, d),
                "violated at n = {} (n_low = {n_low}, p_n = {pn})",
                n_low * factor
            );
        }
    }

    #[test]
    fn gamma_scales_the_estimate(
        rho in 0.001f64..0.999,
        pn in 1u32..1024,
    ) {
        let p = pn as f64 / 1024.0;
        let g = gamma(rho, 3, p);
        let n_hat = estimate_from_rho(rho, 8192, 3, p);
        prop_assert!((n_hat - g * 8192.0).abs() < 1e-6 * n_hat.abs().max(1.0));
    }
}

// Kernel-parity leg: the BloomPlan batched fill (`fill_chunk` and its
// `fill_with` body) must stay bitwise-equivalent to the scalar
// `responses` walk for every hasher kind, thread count, and persistence
// setting. The `kernel-parity` analysis rule requires exactly this
// proptest to exist — deleting it fails the analysis CI job.
mod bloom_kernel_equivalence {
    use proptest::prelude::*;
    use rfid_bfce::{BfceConfig, BloomPlan, HasherKind};
    use rfid_sim::frame::{response_counts_reference, response_fill_with_threads};
    use rfid_sim::Tag;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn bloom_plan_batched_and_scalar_fills_are_identical(
            n in 1usize..2_000,
            p_n in 1u32..=1024,
            seed in any::<u32>(),
            mix in any::<bool>(),
            threads in 1usize..5,
        ) {
            let hasher = if mix { HasherKind::Mix64 } else { HasherKind::XorBitget };
            let cfg = BfceConfig { hasher, ..BfceConfig::paper() };
            let seeds = [
                seed,
                seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
                seed.rotate_left(13) ^ 0x5EED_CAFE,
            ];
            let tags: Vec<Tag> = (0..n as u64)
                .map(|i| Tag {
                    id: i + 1,
                    rn: (i as u32).wrapping_mul(0x9E37_79B9).wrapping_add(seed),
                })
                .collect();
            let plan = BloomPlan::new(&cfg, &seeds, p_n);
            let reference = response_counts_reference(&tags, cfg.w, &plan, usize::MAX);
            let fill = response_fill_with_threads(&tags, cfg.w, cfg.w, &plan, threads);
            for (i, &c) in reference.iter().enumerate() {
                prop_assert_eq!(fill.busy.get(i), c > 0, "slot {} (threads {})", i, threads);
            }
            let total: u64 = reference.iter().map(|&c| c as u64).sum();
            prop_assert_eq!(fill.prefix_responses, total);
        }
    }
}
